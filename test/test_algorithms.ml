(* The enumeration algorithms themselves: Bron_kerbosch (baseline),
   Poly_delay, Cs_cliques1, Cs_cliques2, and the Enumerate front-end. *)

module G = Sgraph.Graph
module NS = Sgraph.Node_set
module Nh = Scliques_core.Neighborhood
module Bk = Scliques_core.Bron_kerbosch
module E = Scliques_core.Enumerate

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let of_l = NS.of_list
let fig1 () = fst (Sgraph.Gen.figure1 ())

let sorted l = List.sort NS.compare l

let bk_strategies = [ ("plain", Bk.Plain); ("pivot", Bk.Pivot); ("degeneracy", Bk.Degeneracy) ]

let bk_count ?strategy g = List.length (Bk.maximal_cliques ?strategy g)

let bron_kerbosch_tests =
  List.concat_map
    (fun (sname, strategy) ->
      [
        Alcotest.test_case (sname ^ ": figure 1 has six maximal cliques") `Quick
          (fun () ->
            let cliques = sorted (Bk.maximal_cliques ~strategy (fig1 ())) in
            check Test_support.ns_list "exact sets"
              (sorted
                 [ of_l [ 0; 1; 2 ]; of_l [ 1; 2; 3 ]; of_l [ 3; 4; 5 ]; of_l [ 4; 5; 7 ];
                   of_l [ 3; 6 ]; of_l [ 6; 7 ] ])
              cliques);
        Alcotest.test_case (sname ^ ": Moon-Moser 3^k maximal cliques") `Quick
          (fun () ->
            List.iter
              (fun parts ->
                let g = Sgraph.Gen.complete_multipartite ~parts ~part_size:3 in
                check int
                  (Printf.sprintf "parts=%d" parts)
                  (int_of_float (3. ** float_of_int parts))
                  (bk_count ~strategy g))
              [ 1; 2; 3; 4; 5 ]);
        Alcotest.test_case (sname ^ ": petersen cliques are its 15 edges") `Quick
          (fun () ->
            let cliques = Bk.maximal_cliques ~strategy (Sgraph.Gen.petersen ()) in
            check int "count" 15 (List.length cliques);
            List.iter (fun c -> check int "size 2" 2 (NS.cardinal c)) cliques);
        Alcotest.test_case (sname ^ ": complete graph is one clique") `Quick (fun () ->
            check Test_support.ns_list "K6" [ NS.range 0 6 ]
              (Bk.maximal_cliques ~strategy (Sgraph.Gen.complete 6)));
        Alcotest.test_case (sname ^ ": edgeless graph gives singletons") `Quick
          (fun () ->
            check int "4 singletons" 4 (bk_count ~strategy (G.empty 4)));
        Alcotest.test_case (sname ^ ": empty graph gives nothing") `Quick (fun () ->
            check int "none" 0 (bk_count ~strategy (G.empty 0)));
        Alcotest.test_case (sname ^ ": matches s=1 brute force on random graphs")
          `Quick (fun () ->
            let rng = Scoll.Rng.create 50 in
            for _ = 1 to 15 do
              let n = 4 + Scoll.Rng.int rng 6 in
              let m = Scoll.Rng.int rng (n * (n - 1) / 2 + 1) in
              let g = Sgraph.Gen.erdos_renyi_gnm rng ~n ~m in
              check Test_support.ns_list "same cliques"
                (Scliques_core.Brute_force.maximal_connected_s_cliques g ~s:1)
                (sorted (Bk.maximal_cliques ~strategy g))
            done);
      ])
    bk_strategies
  @ [
      Alcotest.test_case "min_size prunes output" `Quick (fun () ->
          let g = fig1 () in
          let big = ref [] in
          Bk.iter ~min_size:3 g (fun c -> big := c :: !big);
          check int "four triangles" 4 (List.length !big);
          List.iter (fun c -> check bool ">= 3" true (NS.cardinal c >= 3)) !big);
      Alcotest.test_case "max_clique_size" `Quick (fun () ->
          check int "fig1" 3 (Bk.max_clique_size (fig1 ()));
          check int "K7" 7 (Bk.max_clique_size (Sgraph.Gen.complete 7));
          check int "empty" 0 (Bk.max_clique_size (G.empty 0)));
      Alcotest.test_case "power reduction (Remark 1) matches the oracle" `Quick
        (fun () ->
          let rng = Scoll.Rng.create 51 in
          for _ = 1 to 10 do
            let g = Sgraph.Gen.erdos_renyi_gnm rng ~n:9 ~m:12 in
            let s = 1 + Scoll.Rng.int rng 3 in
            check Test_support.ns_list "maximal s-cliques"
              (Scliques_core.Brute_force.maximal_s_cliques g ~s)
              (sorted (Bk.maximal_s_cliques_via_power g ~s))
          done);
      Alcotest.test_case "power reduction demonstrates Remark 1's warning" `Quick
        (fun () ->
          (* 6-cycle: {0,2,4} is a maximal 2-clique via the power graph but
             unconnected, so connected enumeration must not report it *)
          let c6 = Sgraph.Gen.cycle 6 in
          let via_power = Bk.maximal_s_cliques_via_power c6 ~s:2 in
          let connected = E.sorted_results E.Cs2_p c6 ~s:2 in
          check bool "power finds {0,2,4}" true
            (List.exists (NS.equal (of_l [ 0; 2; 4 ])) via_power);
          check bool "connected enumeration must not" true
            (not (List.exists (NS.equal (of_l [ 0; 2; 4 ])) connected)));
      Alcotest.test_case "should_continue=false stops immediately" `Quick (fun () ->
          let count = ref 0 in
          Bk.iter ~should_continue:(fun () -> false) (Sgraph.Gen.complete 8) (fun _ ->
              incr count);
          check int "nothing" 0 !count);
    ]

(* named variants, paper plots *)
let variants =
  [ E.Poly_delay; E.Cs1; E.Cs2; E.Cs2_f; E.Cs2_p; E.Cs2_pf ]

let per_variant name f = List.map (fun alg -> f (E.name alg ^ ": " ^ name) alg) variants

let g_fig = fst (Sgraph.Gen.figure1 ())

let connected_tests =
  per_variant "figure 1 ground truth across s" (fun title alg ->
      Alcotest.test_case title `Quick (fun () ->
          let g = fig1 () in
          List.iter
            (fun (s, expected) ->
              check int (Printf.sprintf "s=%d" s) expected
                (List.length (E.all_results alg g ~s)))
            [ (1, 6); (2, 3); (3, 2); (4, 1) ]))
  @ per_variant "exact sets on figure 1 at s=2" (fun title alg ->
        Alcotest.test_case title `Quick (fun () ->
            check Test_support.ns_list "the three communities"
              [ of_l [ 0; 1; 2; 3 ]; of_l [ 1; 2; 3; 4; 5; 6 ]; of_l [ 3; 4; 5; 6; 7 ] ]
              (E.sorted_results alg g_fig ~s:2)))
  @ per_variant "H graph of figure 3" (fun title alg ->
        Alcotest.test_case title `Quick (fun () ->
            let h = Sgraph.Gen.figure3_h () in
            check Test_support.ns_list "same as oracle"
              (Scliques_core.Brute_force.maximal_connected_s_cliques h ~s:2)
              (E.sorted_results alg h ~s:2)))
  @ per_variant "disconnected input handled" (fun title alg ->
        Alcotest.test_case title `Quick (fun () ->
            (* two triangles, no connection *)
            let g = G.of_edges ~n:6 [ (0, 1); (1, 2); (0, 2); (3, 4); (4, 5); (3, 5) ] in
            check Test_support.ns_list "one per component"
              [ of_l [ 0; 1; 2 ]; of_l [ 3; 4; 5 ] ]
              (E.sorted_results alg g ~s:2)))
  @ per_variant "isolated nodes become singletons" (fun title alg ->
        Alcotest.test_case title `Quick (fun () ->
            check Test_support.ns_list "singletons"
              [ of_l [ 0 ]; of_l [ 1 ] ]
              (E.sorted_results alg (G.empty 2) ~s:2)))
  @ per_variant "empty graph yields nothing" (fun title alg ->
        Alcotest.test_case title `Quick (fun () ->
            check int "none" 0 (E.count alg (G.empty 0) ~s:2)))
  @ per_variant "single node" (fun title alg ->
        Alcotest.test_case title `Quick (fun () ->
            check Test_support.ns_list "it alone" [ of_l [ 0 ] ]
              (E.sorted_results alg (G.empty 1) ~s:3)))
  @ per_variant "star at s=2 is one set" (fun title alg ->
        Alcotest.test_case title `Quick (fun () ->
            (* every leaf pair is at distance 2 through the hub *)
            check Test_support.ns_list "whole star" [ NS.range 0 6 ]
              (E.sorted_results alg (Sgraph.Gen.star 6) ~s:2)))
  @ per_variant "exponential gadget n=2" (fun title alg ->
        Alcotest.test_case title `Quick (fun () ->
            let g = Sgraph.Gen.exponential_gadget 2 in
            check Test_support.ns_list "same as oracle"
              (Scliques_core.Brute_force.maximal_connected_s_cliques g ~s:2)
              (E.sorted_results alg g ~s:2)))

let poly_delay_tests =
  let module Pd = Scliques_core.Poly_delay in
  [
    Alcotest.test_case "largest_first yields in non-increasing size" `Quick (fun () ->
        let g = Sgraph.Gen.erdos_renyi (Scoll.Rng.create 12) ~n:60 ~avg_degree:4. in
        let nh = Nh.create ~s:2 g in
        let sizes = ref [] in
        Pd.iter ~queue_mode:Pd.Largest_first nh (fun c -> sizes := NS.cardinal c :: !sizes);
        (* the priority queue orders the *frontier*, so sizes are not
           globally sorted; but the first result must be a largest seed and
           the stream must match the FIFO stream as a set *)
        let fifo = ref [] in
        Pd.iter nh (fun c -> fifo := c :: !fifo);
        check int "same count" (List.length !fifo) (List.length !sizes));
    Alcotest.test_case "min_size filters but still explores" `Quick (fun () ->
        let g = fig1 () in
        let nh = Nh.create ~s:2 g in
        let got = ref [] in
        Pd.iter ~min_size:5 nh (fun c -> got := c :: !got);
        check Test_support.ns_list "two big communities"
          [ of_l [ 1; 2; 3; 4; 5; 6 ]; of_l [ 3; 4; 5; 6; 7 ] ]
          (sorted !got));
    Alcotest.test_case "run stats count index inserts" `Quick (fun () ->
        let nh = Nh.create ~s:2 (fig1 ()) in
        let stats = Pd.iter_with_stats nh (fun _ -> ()) in
        check int "3 results" 3 stats.Pd.results;
        check int "3 generated" 3 stats.Pd.generated);
    Alcotest.test_case "should_continue stops the queue loop" `Quick (fun () ->
        let g = Sgraph.Gen.erdos_renyi (Scoll.Rng.create 14) ~n:80 ~avg_degree:4. in
        let nh = Nh.create ~s:2 g in
        let seen = ref 0 in
        Pd.iter ~should_continue:(fun () -> !seen < 3) nh (fun _ -> incr seen);
        check bool "stopped early" true (!seen <= 3));
    Alcotest.test_case "hashtable index enumerates the same family" `Quick (fun () ->
        let g = Test_support.random_graph 21 ~n:30 ~m:70 in
        let collect index_mode =
          let nh = Nh.create ~s:2 g in
          let acc = ref [] in
          Scliques_core.Poly_delay.iter ~index_mode nh (fun c -> acc := c :: !acc);
          sorted !acc
        in
        check Test_support.ns_list "btree = hashtable"
          (collect Scliques_core.Poly_delay.Btree)
          (collect Scliques_core.Poly_delay.Hashtable));
    Alcotest.test_case "first-candidate pivot rule stays correct" `Quick (fun () ->
        let rng = Scoll.Rng.create 22 in
        for _ = 1 to 10 do
          let n = 4 + Scoll.Rng.int rng 6 in
          let m = Scoll.Rng.int rng (n * (n - 1) / 2 + 1) in
          let g = Sgraph.Gen.erdos_renyi_gnm rng ~n ~m in
          let s = 1 + Scoll.Rng.int rng 2 in
          let nh = Nh.create ~s g in
          let acc = ref [] in
          Scliques_core.Cs_cliques2.iter ~pivot:true
            ~pivot_rule:Scliques_core.Cs_cliques2.First_candidate nh (fun c ->
              acc := c :: !acc);
          check Test_support.ns_list "matches oracle"
            (Scliques_core.Brute_force.maximal_connected_s_cliques g ~s)
            (sorted !acc)
        done);
    Alcotest.test_case "delay spot check: results stream before completion" `Quick
      (fun () ->
        (* on the exponential gadget the full output is large; the first
           result must arrive after O(poly) work. We simply check the
           first 5 arrive without enumerating everything. *)
        let g = Sgraph.Gen.exponential_gadget 6 in
        let first = E.first_n E.Poly_delay g ~s:2 5 in
        check int "5 results" 5 (List.length first));
  ]

let enumerate_tests =
  [
    Alcotest.test_case "names round-trip" `Quick (fun () ->
        List.iter
          (fun alg ->
            check bool (E.name alg) true (E.of_name (E.name alg) = Some alg))
          E.all;
        check bool "alias cs2pf" true (E.of_name "cs2pf" = Some E.Cs2_pf);
        check bool "alias PD" true (E.of_name "PD" = Some E.Poly_delay);
        check bool "unknown" true (E.of_name "nope" = None));
    Alcotest.test_case "first_n stops early" `Quick (fun () ->
        let g = Sgraph.Gen.erdos_renyi (Scoll.Rng.create 15) ~n:100 ~avg_degree:6. in
        let r = E.first_n E.Cs2_p g ~s:2 7 in
        check int "exactly 7" 7 (List.length r));
    Alcotest.test_case "first_n larger than total returns all" `Quick (fun () ->
        check int "3" 3 (List.length (E.first_n E.Cs2_p (fig1 ()) ~s:2 100)));
    Alcotest.test_case "count equals list length" `Quick (fun () ->
        let g = Test_support.random_graph 16 ~n:30 ~m:60 in
        check int "consistent" (List.length (E.all_results E.Cs2_p g ~s:2))
          (E.count E.Cs2_p g ~s:2));
    Alcotest.test_case "min_size optimized vs filtered agree" `Quick (fun () ->
        let g = Test_support.random_graph 17 ~n:25 ~m:50 in
        List.iter
          (fun alg ->
            List.iter
              (fun k ->
                let optimized = E.sorted_results ~min_size:k alg g ~s:2 in
                let filtered =
                  List.filter
                    (fun c -> NS.cardinal c >= k)
                    (E.sorted_results alg g ~s:2)
                in
                check Test_support.ns_list
                  (Printf.sprintf "%s k=%d" (E.name alg) k)
                  filtered optimized)
              [ 2; 4; 6 ])
          variants);
    Alcotest.test_case "optimized:false yields the same large sets" `Quick (fun () ->
        let g = Test_support.random_graph 18 ~n:25 ~m:60 in
        List.iter
          (fun alg ->
            let opt = sorted (E.all_results ~min_size:5 ~optimized:true alg g ~s:2) in
            let plain = sorted (E.all_results ~min_size:5 ~optimized:false alg g ~s:2) in
            check Test_support.ns_list (E.name alg) plain opt)
          variants);
    Alcotest.test_case "brute via front-end honors min_size" `Quick (fun () ->
        check int "only >= 4 on fig1 s=2" 3
          (E.count ~min_size:4 E.Brute (fig1 ()) ~s:2));
    Alcotest.test_case "cache_capacity 0 still correct" `Quick (fun () ->
        let g = Test_support.random_graph 19 ~n:20 ~m:40 in
        List.iter
          (fun alg ->
            check Test_support.ns_list (E.name alg)
              (E.sorted_results alg g ~s:2)
              (E.sorted_results ~cache_capacity:0 alg g ~s:2))
          variants);
    Alcotest.test_case "s=1 equals Bron-Kerbosch cliques" `Quick (fun () ->
        let g = Test_support.random_graph 20 ~n:25 ~m:70 in
        let bk = sorted (Bk.maximal_cliques g) in
        List.iter
          (fun alg ->
            check Test_support.ns_list (E.name alg) bk (E.sorted_results alg g ~s:1))
          variants);
    Alcotest.test_case "should_continue=false stops every variant" `Quick (fun () ->
        let g = Test_support.random_graph 23 ~n:40 ~m:100 in
        List.iter
          (fun alg ->
            let seen = ref 0 in
            E.iter ~should_continue:(fun () -> false) alg g ~s:2 (fun _ -> incr seen);
            check int (E.name alg) 0 !seen)
          variants);
    Alcotest.test_case "largest returns the k biggest, descending" `Quick (fun () ->
        let g = Test_support.random_graph 25 ~n:30 ~m:80 in
        let all = E.all_results E.Cs2_p g ~s:2 in
        let by_size =
          List.sort
            (fun a b ->
              let c = compare (NS.cardinal b) (NS.cardinal a) in
              if c <> 0 then c else NS.compare a b)
            all
        in
        List.iter
          (fun k ->
            let expected = List.filteri (fun i _ -> i < k) by_size in
            check Test_support.ns_list
              (Printf.sprintf "top %d" k)
              expected
              (E.largest E.Cs2_p g ~s:2 k))
          [ 0; 1; 3; 10; 1000 ]);
    Alcotest.test_case "largest on figure 1 finds the 6-person community" `Quick
      (fun () ->
        match E.largest E.Cs2_pf (fig1 ()) ~s:2 1 with
        | [ c ] -> check int "size 6" 6 (NS.cardinal c)
        | _ -> Alcotest.fail "expected exactly one");
    Alcotest.test_case "results arrive in deterministic order" `Quick (fun () ->
        let g = Test_support.random_graph 24 ~n:30 ~m:70 in
        List.iter
          (fun alg ->
            let a = E.all_results alg g ~s:2 in
            let b = E.all_results alg g ~s:2 in
            check Test_support.ns_list (E.name alg) a b)
          variants);
  ]

let suites =
  [
    ("bron_kerbosch", bron_kerbosch_tests);
    ("connected_s_cliques", connected_tests);
    ("poly_delay", poly_delay_tests);
    ("enumerate", enumerate_tests);
  ]
