(* Binary graph snapshots: round trips, atomicity, and refusal of torn or
   corrupted files. *)

module G = Sgraph.Graph
module Snap = Sgraph.Snapshot

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let with_tmp f =
  let path = Filename.temp_file "scliques" ".sgr" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let expect_parse_error what f =
  match f () with
  | _ -> Alcotest.fail (what ^ ": expected Parse_error")
  | exception Sgraph.Io_error.Parse_error { line; _ } ->
      check int (what ^ ": binary errors carry line 0") 0 line

let snapshot_tests =
  [
    Alcotest.test_case "round trip on a random graph" `Quick (fun () ->
        with_tmp (fun path ->
            let g =
              Sgraph.Gen.social_proxy (Scoll.Rng.create 11) ~n:120 ~avg_degree:7.
                ~communities:5
            in
            Snap.save g path;
            check bool "equal" true (G.equal g (Snap.load path))));
    Alcotest.test_case "round trip keeps isolated nodes" `Quick (fun () ->
        with_tmp (fun path ->
            let g = G.of_edges ~n:9 [ (0, 1); (4, 5) ] in
            Snap.save g path;
            let g' = Snap.load path in
            check int "n" 9 (G.n g');
            check bool "equal" true (G.equal g g')));
    Alcotest.test_case "round trip of the empty graph" `Quick (fun () ->
        with_tmp (fun path ->
            Snap.save (G.empty 0) path;
            check int "n" 0 (G.n (Snap.load path))));
    Alcotest.test_case "save leaves no temp file behind" `Quick (fun () ->
        with_tmp (fun path ->
            Snap.save (Sgraph.Gen.cycle 10) path;
            check bool "no .tmp" false (Sys.file_exists (path ^ ".tmp"))));
    Alcotest.test_case "save overwrites atomically" `Quick (fun () ->
        with_tmp (fun path ->
            Snap.save (Sgraph.Gen.cycle 10) path;
            Snap.save (Sgraph.Gen.complete 4) path;
            check bool "second snapshot wins" true
              (G.equal (Sgraph.Gen.complete 4) (Snap.load path))));
    Alcotest.test_case "bad magic refused" `Quick (fun () ->
        with_tmp (fun path ->
            write_file path "NOTASNAP-plus-some-trailing-data........";
            expect_parse_error "magic" (fun () -> Snap.load path)));
    Alcotest.test_case "truncation refused at every byte length" `Quick (fun () ->
        with_tmp (fun path ->
            Snap.save (Sgraph.Gen.cycle 5) path;
            let whole = read_file path in
            with_tmp (fun torn ->
                for len = 0 to String.length whole - 1 do
                  write_file torn (String.sub whole 0 len);
                  expect_parse_error
                    (Printf.sprintf "prefix of %d bytes" len)
                    (fun () -> Snap.load torn)
                done)));
    Alcotest.test_case "single corrupted byte refused anywhere" `Quick (fun () ->
        with_tmp (fun path ->
            Snap.save (Sgraph.Gen.cycle 5) path;
            let whole = read_file path in
            with_tmp (fun bad ->
                (* flipping any byte after the magic must trip a CRC check,
                   a range check, or re-validation — never load silently *)
                for i = 8 to String.length whole - 1 do
                  let b = Bytes.of_string whole in
                  Bytes.set b i (Char.chr (Char.code whole.[i] lxor 0x41));
                  write_file bad (Bytes.to_string b);
                  expect_parse_error
                    (Printf.sprintf "byte %d flipped" i)
                    (fun () -> Snap.load bad)
                done)));
    Alcotest.test_case "trailing bytes refused" `Quick (fun () ->
        with_tmp (fun path ->
            Snap.save (Sgraph.Gen.cycle 5) path;
            write_file path (read_file path ^ "x");
            expect_parse_error "trailing" (fun () -> Snap.load path)));
    Alcotest.test_case "missing file raises Sys_error" `Quick (fun () ->
        match Snap.load "/nonexistent/dir/graph.sgr" with
        | exception Sys_error _ -> ()
        | _ -> Alcotest.fail "expected Sys_error");
    Alcotest.test_case "enumeration identical after snapshot round trip" `Quick
      (fun () ->
        with_tmp (fun path ->
            let g = Sgraph.Gen.exponential_gadget 3 in
            Snap.save g path;
            let g' = Snap.load path in
            let module E = Scliques_core.Enumerate in
            let sets alg g = E.all_results alg g ~s:2 in
            check
              (Alcotest.list Test_support.ns)
              "same results" (sets E.Cs2_pf g) (sets E.Cs2_pf g')));
  ]

let suites = [ ("snapshot", snapshot_tests) ]
