(* Edit-script differential harness for incremental churn: random
   insert/delete scripts over ER and scale-free graphs, replayed through
   Sgraph.Overlay, with Enumerate.refresh checked bit-identical to a full
   re-enumeration at EVERY script prefix, across engines (CS2PF warm and
   cold, PolyDelayEnum, the parallel runner). The satellites ride along:
   Overlay m/compact bookkeeping, Components/Union_find vs BFS
   reachability under deletions, Lri_cache invalidation accounting, and
   SGRDIFF1 torn-tail refusal. *)

module NS = Sgraph.Node_set
module G = Sgraph.Graph
module O = Sgraph.Overlay
module D = Sgraph.Diff
module E = Scliques_core.Enumerate
module NH = Scliques_core.Neighborhood
module RS = Scliques_core.Result_io.Stream
module RI = Scliques_core.Result_io.Index

let same_sets = List.equal NS.equal

let show_mismatch what expected actual =
  QCheck2.Test.fail_reportf
    "%s disagrees:@.expected %d sets: %a@.got %d sets: %a" what
    (List.length expected)
    (Fmt.Dump.list NS.pp) expected (List.length actual)
    (Fmt.Dump.list NS.pp) actual

(* (family, n, edge parameter, s, seed): same case shape as
   Test_differential, scaled down — every prefix of a 50+-edit script
   runs several full enumerations, and at s = 3 the power graph is
   near-complete. *)
let arb_churn_case =
  let open QCheck2.Gen in
  oneofl [ `Er; `Sf ] >>= fun family ->
  int_range 1 3 >>= fun s ->
  int_range 2 (if s >= 3 then 10 else 14) >>= fun n ->
  int_range 0 (2 * n) >>= fun m ->
  int_range 0 1_000_000 >>= fun seed ->
  return (family, n, m, s, seed)

let print_case (family, n, m, s, seed) =
  Printf.sprintf "(%s, n=%d, m=%d, s=%d, seed=%d)"
    (match family with `Er -> "er" | `Sf -> "sf")
    n m s seed

let graph_of_case (family, n, m, seed) =
  let rng = Scoll.Rng.create seed in
  match family with
  | `Er -> Sgraph.Gen.erdos_renyi_gnm rng ~n ~m:(min m (n * (n - 1) / 2))
  | `Sf -> Sgraph.Gen.barabasi_albert rng ~n ~m_attach:(min (n - 1) (1 + (m mod 3)))

(* Pick an effective edit against the dense mirror [adj]:
   [delete_bias]% of coin flips delete a live edge (when one exists). *)
let gen_step rng adj n ~delete_bias =
  let live = ref [] and free = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if adj.(u).(v) then live := (u, v) :: !live else free := (u, v) :: !free
    done
  done;
  let pick l = List.nth l (Scoll.Rng.int rng (List.length l)) in
  let deleting =
    match (!live, !free) with
    | [], _ -> false
    | _, [] -> true
    | _ -> Scoll.Rng.int rng 100 < delete_bias
  in
  if deleting then
    let u, v = pick !live in
    O.Delete (u, v)
  else
    let u, v = pick !free in
    O.Insert (u, v)

let apply_mirror adj e =
  let u, v = O.edit_endpoints e in
  let present = match e with O.Insert _ -> true | O.Delete _ -> false in
  adj.(u).(v) <- present;
  adj.(v).(u) <- present

let live_count adj n =
  let c = ref 0 in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if adj.(u).(v) then incr c
    done
  done;
  !c

let script_len rng = 50 + Scoll.Rng.int rng 11

(* sorted-list difference over Node_set.compare order *)
let rec sorted_diff a b =
  match (a, b) with
  | [], _ -> []
  | _, [] -> a
  | x :: ta, y :: tb ->
      let c = NS.compare x y in
      if c = 0 then sorted_diff ta tb
      else if c < 0 then x :: sorted_diff ta b
      else sorted_diff a tb

(* The headline: one long-lived overlay replays the script; at every
   prefix, incremental refresh (warm CS2PF oracle carried across steps,
   cold CS1, parallel) must equal full recomputation by CS2PF, PD and
   Parallel.enumerate — and the Overlay/compact edge counts must equal
   the live count. *)
let prop_refresh_matches_full =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:8
       ~name:"refresh == full re-enumeration at every script prefix"
       ~print:print_case arb_churn_case
       (fun (family, n, m, s, seed) ->
         let g0 = graph_of_case (family, n, m, seed) in
         let rng = Scoll.Rng.create (seed + 17) in
         let len = script_len rng in
         let adj = Array.init n (fun u -> Array.init n (G.mem_edge g0 u)) in
         let nh = NH.create ~s g0 in
         let results = ref (E.sorted_results E.Cs2_pf g0 ~s) in
         let prev = ref g0 in
         let o = O.of_graph g0 in
         for step = 1 to len do
           let e = gen_step rng adj n ~delete_bias:45 in
           apply_mirror adj e;
           O.apply o [ e ];
           let g1 = O.compact o in
           let ctx what =
             Printf.sprintf "%s step %d (%s)" what step
               (Format.asprintf "%a" O.pp_edit e)
           in
           let live = live_count adj n in
           if O.m o <> live then
             QCheck2.Test.fail_reportf "%s: Overlay.m %d, live edges %d"
               (ctx "overlay m") (O.m o) live;
           if G.m g1 <> live then
             QCheck2.Test.fail_reportf "%s: compacted m %d, live edges %d"
               (ctx "compact m") (G.m g1) live;
           if O.epoch o <> step then
             QCheck2.Test.fail_reportf "%s: epoch %d after %d effective edits"
               (ctx "epoch") (O.epoch o) step;
           let full = E.sorted_results E.Cs2_pf g1 ~s in
           let full_pd = E.sorted_results E.Poly_delay g1 ~s in
           let full_par = Scliques_core.Parallel.enumerate ~workers:2 g1 ~s in
           if not (same_sets full full_pd) then
             ignore (show_mismatch (ctx "PD vs CS2PF") full full_pd);
           if not (same_sets full full_par) then
             ignore (show_mismatch (ctx "parallel vs CS2PF") full full_par);
           let touched = [ fst (O.edit_endpoints e); snd (O.edit_endpoints e) ] in
           let warm =
             E.refresh ~nh ~before:!prev ~after:g1 ~touched ~s ~prior:!results ()
           in
           let cold =
             E.refresh ~engine:(`Seq E.Cs1) ~before:!prev ~after:g1 ~touched ~s
               ~prior:!results ()
           in
           let par =
             E.refresh ~engine:(`Par (Some 2)) ~before:!prev ~after:g1 ~touched
               ~s ~prior:!results ()
           in
           if not (same_sets full warm.E.results) then
             ignore (show_mismatch (ctx "warm refresh") full warm.E.results);
           if not (same_sets full cold.E.results) then
             ignore (show_mismatch (ctx "cold CS1 refresh") full cold.E.results);
           if not (same_sets full par.E.results) then
             ignore (show_mismatch (ctx "parallel refresh") full par.E.results);
           (* the reported delta must reconcile prior with the new answer *)
           if not (same_sets warm.E.added (sorted_diff warm.E.results !results))
           then
             ignore
               (show_mismatch (ctx "delta added")
                  (sorted_diff warm.E.results !results)
                  warm.E.added);
           if not (same_sets warm.E.removed (sorted_diff !results warm.E.results))
           then
             ignore
               (show_mismatch (ctx "delta removed")
                  (sorted_diff !results warm.E.results)
                  warm.E.removed);
           if NH.epoch nh <> step then
             QCheck2.Test.fail_reportf "%s: oracle epoch %d after %d refreshes"
               (ctx "oracle epoch") (NH.epoch nh) step;
           results := warm.E.results;
           prev := g1
         done;
         true))

(* Satellite: Components and Union_find agree with BFS reachability at
   every prefix of a delete-heavy script (deletions split components —
   union-find is grow-only, so it must be rebuilt per prefix and still
   agree). *)
let prop_components_track_churn =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:12
       ~name:"Components/Union_find match BFS reachability under churn"
       ~print:print_case arb_churn_case
       (fun (family, n, m, _s, seed) ->
         let g0 = graph_of_case (family, n, m, seed) in
         let rng = Scoll.Rng.create (seed + 23) in
         let len = script_len rng in
         let adj = Array.init n (fun u -> Array.init n (G.mem_edge g0 u)) in
         let o = O.of_graph g0 in
         for step = 1 to len do
           let e = gen_step rng adj n ~delete_bias:65 in
           apply_mirror adj e;
           O.apply o [ e ];
           let g1 = O.compact o in
           let labels, ncomp = Sgraph.Components.labels g1 in
           let uf = Scoll.Union_find.create n in
           G.iter_edges (fun u v -> ignore (Scoll.Union_find.union uf u v)) g1;
           if Scoll.Union_find.count uf <> ncomp then
             QCheck2.Test.fail_reportf
               "step %d: union-find sees %d components, labels %d" step
               (Scoll.Union_find.count uf) ncomp;
           for u = 0 to n - 1 do
             for v = u + 1 to n - 1 do
               let by_labels = labels.(u) = labels.(v) in
               let by_uf = Scoll.Union_find.same uf u v in
               let by_bfs = Sgraph.Bfs.distance g1 u v >= 0 in
               if by_labels <> by_bfs || by_uf <> by_bfs then
                 QCheck2.Test.fail_reportf
                   "step %d: %d~%d labels=%b uf=%b bfs=%b" step u v by_labels
                   by_uf by_bfs
             done
           done
         done;
         true))

(* Satellite: the overlay's merged row kernels agree with the compacted
   flat graph at every prefix — degree, row, mem_edge, fold_row. *)
let prop_overlay_kernels_match_compact =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:15
       ~name:"overlay row kernels == compacted CSR at every prefix"
       ~print:print_case arb_churn_case
       (fun (family, n, m, _s, seed) ->
         let g0 = graph_of_case (family, n, m, seed) in
         let rng = Scoll.Rng.create (seed + 31) in
         let len = script_len rng in
         let adj = Array.init n (fun u -> Array.init n (G.mem_edge g0 u)) in
         let o = O.of_graph g0 in
         for step = 1 to len do
           let e = gen_step rng adj n ~delete_bias:50 in
           apply_mirror adj e;
           O.apply o [ e ];
           let g1 = O.compact o in
           for v = 0 to n - 1 do
             let expect = G.neighbors g1 v in
             let got = O.row o v in
             if not (Array.length got = Array.length expect
                    && Array.for_all2 Int.equal got expect) then
               QCheck2.Test.fail_reportf "step %d: row %d mismatch" step v;
             if O.degree o v <> G.degree g1 v then
               QCheck2.Test.fail_reportf "step %d: degree %d mismatch" step v;
             let folded = O.fold_row (fun acc u -> acc + u) 0 o v in
             if folded <> Array.fold_left ( + ) 0 expect then
               QCheck2.Test.fail_reportf "step %d: fold_row %d mismatch" step v;
             for u = 0 to n - 1 do
               if O.mem_edge o v u <> G.mem_edge g1 v u then
                 QCheck2.Test.fail_reportf "step %d: mem_edge %d %d mismatch"
                   step v u
             done
           done;
           ignore (O.base o)
         done;
         true))

(* Satellite regression: a delete-only batch must leave m exactly at the
   live count and compact to a graph with no residue — not phantom
   zero-length rows miscounted into Graph.m. *)
let test_overlay_delete_only () =
  let g = Sgraph.Gen.barabasi_albert (Scoll.Rng.create 5) ~n:12 ~m_attach:2 in
  let o = O.of_graph g in
  let edges = G.edges g in
  List.iteri
    (fun i (u, v) ->
      Alcotest.(check bool) "delete effective" true (O.delete_edge o u v);
      let expect = G.m g - i - 1 in
      Alcotest.(check int) "overlay m tracks deletions" expect (O.m o);
      Alcotest.(check int) "compact m tracks deletions" expect (G.m (O.compact o)))
    edges;
  Alcotest.(check int) "all edges gone" 0 (O.m o);
  let c = O.compact o in
  Alcotest.(check int) "compacted n preserved" (G.n g) (G.n c);
  Alcotest.(check bool) "compacted equals empty graph" true
    (G.equal c (G.empty (G.n g)));
  Alcotest.(check int) "delta covers every base edge" (G.m g) (O.delta_size o)

let test_overlay_cancellation () =
  let g = G.of_edges ~n:4 [ (0, 1); (1, 2) ] in
  let o = O.of_graph g in
  (* insert then delete a novel edge: no residue *)
  Alcotest.(check bool) "insert 0-3" true (O.insert_edge o 0 3);
  Alcotest.(check bool) "delete 0-3" true (O.delete_edge o 3 0);
  Alcotest.(check int) "delta empty after cancel" 0 (O.delta_size o);
  Alcotest.(check int) "m restored" 2 (O.m o);
  (* delete then re-insert a base edge: no residue either *)
  Alcotest.(check bool) "delete 0-1" true (O.delete_edge o 0 1);
  Alcotest.(check bool) "re-insert 0-1" true (O.insert_edge o 1 0);
  Alcotest.(check int) "delta empty again" 0 (O.delta_size o);
  Alcotest.(check bool) "round-trips to the base graph" true
    (G.equal g (O.compact o));
  Alcotest.(check int) "epoch counts the four effective edits" 4 (O.epoch o);
  (* no-ops: absent delete, present insert *)
  Alcotest.(check bool) "inserting a live edge is a no-op" false
    (O.insert_edge o 0 1);
  Alcotest.(check bool) "deleting an absent edge is a no-op" false
    (O.delete_edge o 0 2);
  Alcotest.(check int) "no-ops leave the epoch alone" 4 (O.epoch o);
  (* strict apply refuses ineffective edits *)
  Alcotest.check_raises "strict apply"
    (Invalid_argument "Overlay.apply: ineffective insert +0-1") (fun () ->
      O.apply o [ O.Insert (0, 1) ]);
  Alcotest.check_raises "self-loop refused"
    (Invalid_argument "Overlay.insert_edge: self-loop 2") (fun () ->
      ignore (O.insert_edge o 2 2))

(* Satellite: Lri_cache remove keeps the weight ledger exact and does not
   let a removed-then-re-added key be evicted on its orphaned queue slot. *)
let test_lri_remove_accounting () =
  let c = Scoll.Lri_cache.create ~weight:String.length ~capacity:4 () in
  Scoll.Lri_cache.add c 1 "aa";
  Scoll.Lri_cache.add c 2 "bbb";
  Alcotest.(check int) "weight sums" 5 (Scoll.Lri_cache.total_weight c);
  Scoll.Lri_cache.remove c 2;
  Alcotest.(check int) "weight drops with remove" 2
    (Scoll.Lri_cache.total_weight c);
  Alcotest.(check int) "length drops" 1 (Scoll.Lri_cache.length c);
  Scoll.Lri_cache.remove c 2;
  Alcotest.(check int) "double remove is a no-op" 2
    (Scoll.Lri_cache.total_weight c);
  Alcotest.(check int) "removals are not evictions" 0
    (Scoll.Lri_cache.stats c).Scoll.Lri_cache.evictions;
  let keys =
    List.sort Int.compare (Scoll.Lri_cache.fold (fun k _ acc -> k :: acc) c [])
  in
  Alcotest.(check (list int)) "fold sees live keys" [ 1 ] keys

let test_lri_readd_not_prematurely_evicted () =
  let c = Scoll.Lri_cache.create ~capacity:2 () in
  Scoll.Lri_cache.add c 1 "one";
  Scoll.Lri_cache.add c 2 "two";
  Scoll.Lri_cache.remove c 1;
  Scoll.Lri_cache.add c 1 "one again";
  (* eviction order is now 2 (oldest live) then 1; key 1's orphaned front
     slot must not count against its re-insertion *)
  Scoll.Lri_cache.add c 3 "three";
  Alcotest.(check bool) "re-added key survives" true (Scoll.Lri_cache.mem c 1);
  Alcotest.(check bool) "oldest live key evicted" false (Scoll.Lri_cache.mem c 2);
  Alcotest.(check bool) "new key present" true (Scoll.Lri_cache.mem c 3);
  Alcotest.(check int) "exactly one eviction" 1
    (Scoll.Lri_cache.stats c).Scoll.Lri_cache.evictions

(* Satellite: epoch-based invalidation drops exactly the stale N^s balls
   and their byte weight; distant balls stay warm. Path 0-1-...-9, s=2,
   deleting edge 0-1: the closed radius-2 balls of {0,1} in either graph
   cover {0,1,2,3}, so exactly four entries (and their weight) go. *)
let test_nh_invalidate_accounting () =
  let n = 10 in
  let path k = List.init (k - 1) (fun i -> (i, i + 1)) in
  let before = G.of_edges ~n (path n) in
  let after = D.apply before [ O.Delete (0, 1) ] in
  let s = 2 in
  let nh = NH.create ~s before in
  G.iter_nodes (fun v -> ignore (NH.ball nh v)) before;
  let weight_of g v =
    (8 * NS.cardinal (Sgraph.Bfs.ball g v ~radius:s)) + 32
  in
  let total g nodes =
    List.fold_left (fun acc v -> acc + weight_of g v) 0 nodes
  in
  Alcotest.(check int) "initial weight ledger exact"
    (total before (List.init n Fun.id))
    (NH.cache_bytes nh);
  let misses0 = (NH.cache_stats nh).Scoll.Lri_cache.misses in
  NH.invalidate nh ~after ~touched:[ 0; 1 ];
  Alcotest.(check int) "epoch bumped" 1 (NH.epoch nh);
  Alcotest.(check int) "only the stale balls' weight dropped"
    (total before [ 4; 5; 6; 7; 8; 9 ])
    (NH.cache_bytes nh);
  (* re-query everything on the after graph: exactly the four dropped
     keys miss; the six survivors hit warm *)
  G.iter_nodes
    (fun v ->
      let b = NH.ball nh v in
      Alcotest.(check bool)
        (Printf.sprintf "ball %d correct after invalidation" v)
        true
        (NS.equal b (Sgraph.Bfs.ball after v ~radius:s)))
    after;
  let misses1 = (NH.cache_stats nh).Scoll.Lri_cache.misses in
  Alcotest.(check int) "exactly the stale balls recomputed" 4
    (misses1 - misses0);
  Alcotest.(check int) "refilled ledger exact"
    (total after (List.init n Fun.id))
    (NH.cache_bytes nh)

let edit_equal a b =
  match (a, b) with
  | O.Insert (u, v), O.Insert (u', v') | O.Delete (u, v), O.Delete (u', v') ->
      u = u' && v = v'
  | _ -> false

let edit = Alcotest.testable O.pp_edit edit_equal

(* SGRDIFF1: save/load round trip, between/apply as inverse, and the
   refusal contract — a prefix cut at a record boundary is a valid
   shorter diff, every other truncation and any corrupted byte is
   refused with a Parse_error, never silently tolerated. *)
let prop_diff_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:30 ~name:"SGRDIFF1 round trip and between/apply"
       ~print:print_case arb_churn_case
       (fun (family, n, m, _s, seed) ->
         let g0 = graph_of_case (family, n, m, seed) in
         let rng = Scoll.Rng.create (seed + 41) in
         let len = 1 + Scoll.Rng.int rng 20 in
         let adj = Array.init n (fun u -> Array.init n (G.mem_edge g0 u)) in
         let o = O.of_graph g0 in
         let script =
           List.init len (fun _ ->
               let e = gen_step rng adj n ~delete_bias:45 in
               apply_mirror adj e;
               O.apply o [ e ];
               e)
         in
         let g1 = O.compact o in
         let path = Filename.temp_file "churn" ".diff" in
         Fun.protect
           ~finally:(fun () -> Sys.remove path)
           (fun () ->
             D.save ~base_n:(G.n g0) ~base_m:(G.m g0) script path;
             let h, loaded = D.load path in
             Alcotest.(check int) "header n" (G.n g0) h.D.base_n;
             Alcotest.(check int) "header m" (G.m g0) h.D.base_m;
             Alcotest.(check (list edit)) "script round-trips" script loaded;
             D.check_base ~file:path h g0;
             Alcotest.(check bool) "replay reaches the mutated graph" true
               (G.equal g1 (D.apply g0 script));
             (* between is a strict script from g0 to g1 *)
             let s2 = D.between g0 g1 in
             Alcotest.(check bool) "between/apply is the identity" true
               (G.equal g1 (D.apply g0 s2));
             Alcotest.(check bool) "between of equal graphs is empty" true
               (match D.between g1 g1 with [] -> true | _ -> false));
         true))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc s)

let test_diff_torn_tail_refused () =
  let g = G.of_edges ~n:6 [ (0, 1); (1, 2); (2, 3) ] in
  let script = [ O.Insert (0, 3); O.Delete (1, 2); O.Insert (4, 5) ] in
  let path = Filename.temp_file "churn" ".diff" in
  let torn = path ^ ".torn" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove path;
      if Sys.file_exists torn then Sys.remove torn)
    (fun () ->
      D.save ~base_n:(G.n g) ~base_m:(G.m g) script path;
      let bytes = read_file path in
      let total = String.length bytes in
      (* magic 8 + header 16+4, then 3 records of 17+4 *)
      Alcotest.(check int) "file size" (28 + (3 * 21)) total;
      for len = 0 to total - 1 do
        write_file torn (String.sub bytes 0 len);
        let boundary = len >= 28 && (len - 28) mod 21 = 0 in
        match D.load torn with
        | h, edits ->
            if not boundary then
              Alcotest.failf "truncation to %d bytes was not refused" len;
            Alcotest.(check int) "prefix header intact" (G.n g) h.D.base_n;
            Alcotest.(check int)
              (Printf.sprintf "prefix at %d bytes holds %d edits" len
                 ((len - 28) / 21))
              ((len - 28) / 21)
              (List.length edits)
        | exception Sgraph.Io_error.Parse_error _ ->
            if boundary then
              Alcotest.failf "record-boundary prefix of %d bytes was refused" len
      done;
      (* flip one byte inside the last record's payload: CRC refusal *)
      let corrupt = Bytes.of_string bytes in
      let off = 28 + (2 * 21) + 3 in
      Bytes.set corrupt off (Char.chr (Char.code (Bytes.get corrupt off) lxor 0x41));
      write_file torn (Bytes.to_string corrupt);
      (match D.load torn with
      | _ -> Alcotest.fail "corrupted record was not refused"
      | exception Sgraph.Io_error.Parse_error _ -> ());
      (* base mismatch is refused up front *)
      let h, _ = D.load path in
      match D.check_base ~file:path h (G.empty 6) with
      | () -> Alcotest.fail "base mismatch was not refused"
      | exception Sgraph.Io_error.Parse_error _ -> ())

(* the wire path this PR adds: to_string/of_string are the same format
   (and the same refusal discipline) as save/load, byte for byte — one
   decoder guards disk, journal and socket alike *)
let test_diff_string_codec () =
  let g = G.of_edges ~n:6 [ (0, 1); (1, 2); (2, 3) ] in
  let script = [ O.Insert (0, 3); O.Delete (1, 2); O.Insert (4, 5) ] in
  let image = D.to_string ~base_n:(G.n g) ~base_m:(G.m g) script in
  let path = Filename.temp_file "churn" ".diff" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      D.save ~base_n:(G.n g) ~base_m:(G.m g) script path;
      Alcotest.(check string) "to_string emits save's exact bytes"
        (read_file path) image);
  let h, loaded = D.of_string ~file:"<mem>" image in
  Alcotest.(check int) "header n" (G.n g) h.D.base_n;
  Alcotest.(check int) "header m" (G.m g) h.D.base_m;
  Alcotest.(check (list edit)) "script round-trips" script loaded;
  Alcotest.(check string) "encode_header/encode_edit compose to the image"
    image
    (String.concat ""
       (D.encode_header ~base_n:(G.n g) ~base_m:(G.m g)
       :: List.map D.encode_edit script));
  (* every strict-prefix truncation: a cut at a record boundary is a
     valid shorter script, every other length is refused *)
  let total = String.length image in
  for len = 0 to total - 1 do
    let boundary = len >= 28 && (len - 28) mod 21 = 0 in
    match D.of_string ~file:"<mem>" (String.sub image 0 len) with
    | _, edits ->
        if not boundary then
          Alcotest.failf "truncation to %d bytes was not refused" len
        else
          Alcotest.(check int)
            (Printf.sprintf "prefix at %d bytes" len)
            ((len - 28) / 21)
            (List.length edits)
    | exception Sgraph.Io_error.Parse_error _ ->
        if boundary then
          Alcotest.failf "record-boundary prefix of %d bytes was refused" len
  done;
  (* every single-byte flip lands in the magic, a CRC, or CRC'd payload:
     all refused with a typed error, none decoded differently *)
  for off = 0 to total - 1 do
    let b = Bytes.of_string image in
    Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x5a));
    match D.of_string ~file:"<mem>" (Bytes.to_string b) with
    | _ -> Alcotest.failf "flip at byte %d was not refused" off
    | exception Sgraph.Io_error.Parse_error _ -> ()
  done;
  (* trailing garbage is a torn tail, not ignorable slack *)
  match D.of_string ~file:"<mem>" (image ^ "x") with
  | _ -> Alcotest.fail "trailing garbage accepted"
  | exception Sgraph.Io_error.Parse_error _ -> ()

let test_diff_writer_journal () =
  let g = G.of_edges ~n:5 [ (0, 1) ] in
  let path = Filename.temp_file "churn" ".diff" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let w = D.open_writer ~base_n:(G.n g) ~base_m:(G.m g) path in
      D.write_edit w (O.Insert (1, 2));
      D.flush w;
      (* a reader between flushes sees a valid shorter journal *)
      let _, edits = D.load path in
      Alcotest.(check (list edit)) "first flush visible" [ O.Insert (1, 2) ] edits;
      D.write_edit w (O.Delete (0, 1));
      D.close w;
      let _, edits = D.load path in
      Alcotest.(check (list edit)) "full journal after close"
        [ O.Insert (1, 2); O.Delete (0, 1) ]
        edits;
      Alcotest.(check bool) "journal replays" true
        (G.equal
           (D.apply g [ O.Insert (1, 2); O.Delete (0, 1) ])
           (G.of_edges ~n:5 [ (1, 2) ])))

(* refresh argument validation *)
let test_refresh_validation () =
  let g = G.of_edges ~n:4 [ (0, 1) ] in
  let prior = E.sorted_results E.Cs2_pf g ~s:2 in
  let check_invalid name f =
    match f () with
    | (_ : E.refresh_delta) -> Alcotest.failf "%s accepted" name
    | exception Invalid_argument _ -> ()
  in
  check_invalid "PD engine" (fun () ->
      E.refresh ~engine:(`Seq E.Poly_delay) ~before:g ~after:g ~touched:[ 0 ] ~s:2
        ~prior ());
  check_invalid "brute engine" (fun () ->
      E.refresh ~engine:(`Seq E.Brute) ~before:g ~after:g ~touched:[ 0 ] ~s:2
        ~prior ());
  check_invalid "node count change" (fun () ->
      E.refresh ~before:g ~after:(G.empty 5) ~touched:[ 0 ] ~s:2 ~prior ());
  check_invalid "touched out of range" (fun () ->
      E.refresh ~before:g ~after:g ~touched:[ 4 ] ~s:2 ~prior ());
  (* an edit script that does not account for every touched endpoint *)
  let g' = D.apply g [ O.Insert (2, 3) ] in
  check_invalid "edits disagree with touched" (fun () ->
      E.refresh ~edits:[ O.Insert (2, 3) ] ~before:g ~after:g' ~touched:[ 0; 1 ]
        ~s:2
        ~prior ());
  (* empty batch: the prior answer comes back verbatim *)
  let d = E.refresh ~before:g ~after:g ~touched:[] ~s:2 ~prior () in
  Alcotest.(check bool) "empty batch keeps the answer" true
    (same_sets prior d.E.results);
  Alcotest.(check int) "empty batch reruns nothing" 0 d.E.roots_rerun;
  Alcotest.(check int) "empty batch skips nothing" 0 d.E.roots_skipped;
  Alcotest.(check (list (pair int int))) "empty batch digests nothing" []
    d.E.root_fingerprints

(* The sorted-input contract on [prior] is debug-asserted, so a producer
   handing refresh an unsorted answer dies loudly in dev builds instead
   of silently splicing results into the wrong place. (With assertions
   compiled out the check vanishes — the contract is then on the caller,
   which is why every in-tree producer already sorts.) *)
let test_refresh_unsorted_prior_asserted () =
  let g = G.of_edges ~n:5 [ (0, 1); (2, 3); (3, 4) ] in
  let prior = E.sorted_results E.Cs2_pf g ~s:2 in
  Alcotest.(check bool) "case needs two results" true (List.length prior >= 2);
  let unsorted = List.rev prior in
  match
    E.refresh ~before:g ~after:g ~touched:[ 0 ] ~s:2 ~prior:unsorted ()
  with
  | (_ : E.refresh_delta) -> () (* assertions compiled out: caller's contract *)
  | exception Assert_failure _ -> ()

(* ------------------------------------------------------------------ *)
(* SCLQIDX1: the persistent root→results sidecar                       *)

(* Enumerate a small graph, stream it, index it: every root's extent
   must point at exactly its own records, fingerprints must match the
   live digest, and the codec/save/load must round-trip. *)
let test_index_build_roundtrip () =
  let g = G.of_edges ~n:7 [ (0, 1); (1, 2); (2, 3); (4, 5) ] in
  let s = 2 in
  let results = E.sorted_results E.Cs2_pf g ~s in
  let path = Filename.temp_file "churn" ".results" in
  let side = RI.path_for path in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove path;
      if Sys.file_exists side then Sys.remove side)
    (fun () ->
      let w = RS.open_writer path in
      List.iter (RS.write_set w) results;
      RS.close w;
      let idx = RI.build ~s ~n:(G.n g) ~fingerprint:(NH.root_fingerprint ~s g) path in
      Alcotest.(check string) "sidecar convention" (path ^ ".idx") side;
      Alcotest.(check int) "one entry per root" (G.n g) (RI.n idx);
      Alcotest.(check int) "stream length recorded"
        (String.length (read_file path))
        idx.RI.stream_len;
      Alcotest.(check int) "s recorded" s idx.RI.s;
      (* extents tile the stream after the magic, counts sum to the answer *)
      let counted =
        Array.fold_left (fun acc e -> acc + e.RI.count) 0 idx.RI.entries
      in
      Alcotest.(check int) "counts sum to the answer" (List.length results)
        counted;
      let extent_sum =
        Array.fold_left (fun acc e -> acc + e.RI.extent) 0 idx.RI.entries
      in
      Alcotest.(check int) "extents tile the records"
        (idx.RI.stream_len - String.length RS.magic)
        extent_sum;
      (* each root's extent decodes to exactly that root's results *)
      let bytes = read_file path in
      Array.iteri
        (fun root e ->
          let mine =
            List.filter (fun c -> NS.min_elt c = root) results
          in
          Alcotest.(check int)
            (Printf.sprintf "root %d count" root)
            (List.length mine) e.RI.count;
          Alcotest.(check int)
            (Printf.sprintf "root %d fingerprint" root)
            (NH.root_fingerprint ~s g root)
            e.RI.fingerprint;
          let slice = String.sub bytes e.RI.offset e.RI.extent in
          let expect =
            String.concat "" (List.map (fun c -> RS.encode_record (RS.encode_set c)) mine)
          in
          Alcotest.(check string)
            (Printf.sprintf "root %d extent bytes" root)
            expect slice)
        idx.RI.entries;
      (* codec and file round trips *)
      let image = RI.to_string idx in
      let idx2 = RI.of_string ~file:"<mem>" image in
      Alcotest.(check string) "of_string/to_string round-trips" image
        (RI.to_string idx2);
      RI.save idx side;
      let idx3 = RI.load side in
      Alcotest.(check string) "save/load round-trips" image (RI.to_string idx3))

(* A parallel stream commits roots in retirement order, not ascending —
   build must accept any root-contiguous order and record true offsets. *)
let test_index_build_unordered_stream () =
  let g = G.of_edges ~n:6 [ (0, 1); (1, 2); (3, 4); (4, 5) ] in
  let s = 2 in
  let results = E.sorted_results E.Cs2_pf g ~s in
  let by_root r = List.filter (fun c -> NS.min_elt c = r) results in
  let path = Filename.temp_file "churn" ".results" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let w = RS.open_writer path in
      (* retire roots out of order, each root's records contiguous *)
      List.iter
        (fun r -> List.iter (RS.write_set w) (by_root r))
        [ 3; 0; 4; 1; 5; 2 ];
      RS.close w;
      let idx = RI.build ~s ~n:(G.n g) ~fingerprint:(NH.root_fingerprint ~s g) path in
      let bytes = read_file path in
      Array.iteri
        (fun root e ->
          let expect =
            String.concat ""
              (List.map (fun c -> RS.encode_record (RS.encode_set c)) (by_root root))
          in
          Alcotest.(check string)
            (Printf.sprintf "root %d extent under retirement order" root)
            expect
            (String.sub bytes e.RI.offset e.RI.extent))
        idx.RI.entries;
      (* interleaving a root's records (not root-grouped) is refused *)
      let w = RS.open_writer path in
      (match results with
      | a :: b :: _ when NS.min_elt a <> NS.min_elt b ->
          RS.write_set w a;
          RS.write_set w b;
          RS.write_set w a
      | _ -> Alcotest.fail "case needs two roots");
      RS.close w;
      match RI.build ~s ~n:(G.n g) ~fingerprint:(fun _ -> 0) path with
      | (_ : RI.t) -> Alcotest.fail "non-root-grouped stream indexed"
      | exception Sgraph.Io_error.Parse_error _ -> ())

(* The refusal contract, mirroring the SGRDIFF1 suite — but stricter:
   the index is derived data with an up-front entry count, so unlike the
   diff there are NO valid prefixes. Every truncation, every byte flip
   and any trailing garbage must raise Parse_error. *)
let test_index_codec_refusals () =
  let g = G.of_edges ~n:6 [ (0, 1); (1, 2); (2, 3); (4, 5) ] in
  let s = 2 in
  let results = E.sorted_results E.Cs2_pf g ~s in
  let path = Filename.temp_file "churn" ".results" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let w = RS.open_writer path in
      List.iter (RS.write_set w) results;
      RS.close w;
      let idx = RI.build ~s ~n:(G.n g) ~fingerprint:(NH.root_fingerprint ~s g) path in
      let image = RI.to_string idx in
      let total = String.length image in
      for len = 0 to total - 1 do
        match RI.of_string ~file:"<mem>" (String.sub image 0 len) with
        | (_ : RI.t) -> Alcotest.failf "truncation to %d bytes was not refused" len
        | exception Sgraph.Io_error.Parse_error _ -> ()
      done;
      for off = 0 to total - 1 do
        let b = Bytes.of_string image in
        Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x5a));
        match RI.of_string ~file:"<mem>" (Bytes.to_string b) with
        | (_ : RI.t) -> Alcotest.failf "flip at byte %d was not refused" off
        | exception Sgraph.Io_error.Parse_error _ -> ()
      done;
      match RI.of_string ~file:"<mem>" (image ^ "x") with
      | (_ : RI.t) -> Alcotest.fail "trailing garbage accepted"
      | exception Sgraph.Io_error.Parse_error _ -> ())

(* Splice differential: refresh against stored fingerprints, patch only
   the changed roots into the stream, and the result must decode to the
   full after-answer — with every index fingerprint (patched or copied)
   equal to the live digest on the after-graph, which is exactly the
   ρ_s ≤ 2s-1 soundness argument the sidecar rests on. *)
let test_index_splice_differential () =
  let g0 =
    Sgraph.Gen.erdos_renyi_gnm (Scoll.Rng.create 97) ~n:24 ~m:40
  in
  let s = 2 in
  let prior = E.sorted_results E.Cs2_pf g0 ~s in
  let path = Filename.temp_file "churn" ".results" in
  let out = path ^ ".spliced" in
  let cleanup p = if Sys.file_exists p then Sys.remove p in
  Fun.protect
    ~finally:(fun () ->
      List.iter cleanup [ path; RI.path_for path; out; RI.path_for out ])
    (fun () ->
      let w = RS.open_writer path in
      List.iter (RS.write_set w) prior;
      RS.close w;
      let idx = RI.build ~s ~n:(G.n g0) ~fingerprint:(NH.root_fingerprint ~s g0) path in
      RI.save idx (RI.path_for path);
      (* one effective edit, refreshed off the stored fingerprints only *)
      let e =
        if G.mem_edge g0 0 1 then O.Delete (0, 1) else O.Insert (0, 1)
      in
      let g1 = D.apply g0 [ e ] in
      let d =
        E.refresh
          ~prior_fingerprint:(fun r -> Some idx.RI.entries.(r).RI.fingerprint)
          ~edits:[ e ] ~before:g0 ~after:g1 ~touched:[ 0; 1 ] ~s ~prior ()
      in
      let full = E.sorted_results E.Cs2_pf g1 ~s in
      if not (same_sets full d.E.results) then
        Alcotest.fail "refresh off stored fingerprints diverged";
      (* patch exactly the re-run roots, as the CLI does *)
      let rerun = Hashtbl.create 16 in
      List.iter
        (fun (root, fp) ->
          if idx.RI.entries.(root).RI.fingerprint <> fp then
            Hashtbl.replace rerun root (fp, ref []))
        d.E.root_fingerprints;
      List.iter
        (fun c ->
          match Hashtbl.find_opt rerun (NS.min_elt c) with
          | Some (_, acc) -> acc := c :: !acc
          | None -> ())
        d.E.results;
      let patched =
        Hashtbl.fold
          (fun root (fp, acc) l -> (root, fp, List.rev !acc) :: l)
          rerun []
      in
      Alcotest.(check int) "patched roots = roots whose digest moved"
        (Hashtbl.length rerun)
        (List.length patched);
      let idx', stats = RI.splice ~old_stream:path ~index:idx ~patched ~out in
      Alcotest.(check int) "stats count the patch" (List.length patched)
        stats.RI.roots_patched;
      Alcotest.(check bool) "unchanged roots were copied, not re-encoded" true
        (stats.RI.copied_bytes > 0);
      (* the spliced stream IS the after-answer *)
      let decoded, tail = RS.read_results out in
      (match tail with
      | `Clean -> ()
      | `Torn -> Alcotest.fail "splice left a torn tail");
      if not (same_sets full decoded) then
        ignore (show_mismatch "spliced stream" full decoded);
      Alcotest.(check int) "returned index matches the new stream"
        (String.length (read_file out))
        idx'.RI.stream_len;
      (* the saved sidecar loads and its digests are live on the after graph *)
      let idx'' = RI.load (RI.path_for out) in
      Alcotest.(check string) "splice saved the index it returned"
        (RI.to_string idx') (RI.to_string idx'');
      Array.iteri
        (fun root e ->
          Alcotest.(check int)
            (Printf.sprintf "root %d digest live on after-graph" root)
            (NH.root_fingerprint ~s g1 root)
            e.RI.fingerprint)
        idx'.RI.entries;
      (* a stale index (stream changed size underneath it) is refused *)
      write_file path (read_file path ^ RS.encode_record (RS.encode_set (NS.of_list [ 0 ])));
      match RI.splice ~old_stream:path ~index:idx ~patched ~out with
      | (_ : RI.t * RI.splice_stats) -> Alcotest.fail "stale index spliced"
      | exception Sgraph.Io_error.Parse_error _ -> ())

(* The tentpole property: batched refresh with the fingerprint gate on,
   off, and fed from stored digests is bit-identical to full
   re-enumeration at every script prefix — and the gate only ever
   shrinks the re-run set it is given. *)
let prop_batch_fingerprint_refresh =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:6
       ~name:"batched fingerprint refresh == full at every prefix"
       ~print:print_case arb_churn_case
       (fun (family, n, m, s, seed) ->
         let g0 = graph_of_case (family, n, m, seed) in
         let rng = Scoll.Rng.create (seed + 71) in
         let steps = 12 + Scoll.Rng.int rng 5 in
         let adj = Array.init n (fun u -> Array.init n (G.mem_edge g0 u)) in
         let results = ref (E.sorted_results E.Cs2_pf g0 ~s) in
         let prev = ref g0 in
         for step = 1 to steps do
           (* a batch of 1–3 effective edits through one overlay *)
           let o = O.of_graph !prev in
           let k = 1 + Scoll.Rng.int rng 3 in
           let edits =
             List.init k (fun _ ->
                 let e = gen_step rng adj n ~delete_bias:45 in
                 apply_mirror adj e;
                 O.apply o [ e ];
                 e)
           in
           let g1 = O.compact o in
           let touched = O.touched edits in
           let full = E.sorted_results E.Cs2_pf g1 ~s in
           let ctx what = Printf.sprintf "%s step %d (batch %d)" what step k in
           let fp =
             E.refresh ~edits ~before:!prev ~after:g1 ~touched ~s
               ~prior:!results ()
           in
           let nofp =
             E.refresh ~edits ~fingerprints:false ~before:!prev ~after:g1
               ~touched ~s ~prior:!results ()
           in
           let stored =
             E.refresh ~edits
               ~prior_fingerprint:(fun r ->
                 Some (NH.root_fingerprint ~s !prev r))
               ~before:!prev ~after:g1 ~touched ~s ~prior:!results ()
           in
           let blanket =
             E.refresh ~before:!prev ~after:g1 ~touched ~s ~prior:!results ()
           in
           if not (same_sets full fp.E.results) then
             ignore (show_mismatch (ctx "fingerprinted refresh") full fp.E.results);
           if not (same_sets full nofp.E.results) then
             ignore (show_mismatch (ctx "ungated refresh") full nofp.E.results);
           if not (same_sets full stored.E.results) then
             ignore (show_mismatch (ctx "stored-digest refresh") full stored.E.results);
           if not (same_sets full blanket.E.results) then
             ignore (show_mismatch (ctx "blanket refresh") full blanket.E.results);
           (* the gate partitions the ungated re-run set, never grows it *)
           if nofp.E.roots_skipped <> 0 then
             QCheck2.Test.fail_reportf "%s: ungated refresh skipped %d roots"
               (ctx "gate off") nofp.E.roots_skipped;
           if fp.E.roots_rerun + fp.E.roots_skipped <> nofp.E.roots_rerun then
             QCheck2.Test.fail_reportf
               "%s: gate re-ran %d + skipped %d but the affected set holds %d"
               (ctx "gate ledger") fp.E.roots_rerun fp.E.roots_skipped
               nofp.E.roots_rerun;
           if stored.E.roots_rerun <> fp.E.roots_rerun then
             QCheck2.Test.fail_reportf
               "%s: stored digests re-ran %d roots, computed digests %d"
               (ctx "stored digests") stored.E.roots_rerun fp.E.roots_rerun;
           (* per-edit locality never widens the blanket affected set *)
           if nofp.E.roots_rerun > blanket.E.roots_rerun + blanket.E.roots_skipped
           then
             QCheck2.Test.fail_reportf
               "%s: per-edit D has %d roots, blanket bound %d" (ctx "locality")
               nofp.E.roots_rerun
               (blanket.E.roots_rerun + blanket.E.roots_skipped);
           (* the digests refresh reports are the after-graph's, ascending *)
           let rec ascending = function
             | (a, _) :: ((b, _) :: _ as tl) -> a < b && ascending tl
             | _ -> true
           in
           if not (ascending fp.E.root_fingerprints) then
             QCheck2.Test.fail_reportf "%s: root_fingerprints not ascending"
               (ctx "digest order");
           List.iter
             (fun (root, digest) ->
               if digest <> NH.root_fingerprint ~s g1 root then
                 QCheck2.Test.fail_reportf
                   "%s: root %d digest is not the after-graph's"
                   (ctx "digest value") root)
             fp.E.root_fingerprints;
           if List.length fp.E.root_fingerprints <> nofp.E.roots_rerun then
             QCheck2.Test.fail_reportf
               "%s: %d digests reported for %d affected roots"
               (ctx "digest cover")
               (List.length fp.E.root_fingerprints)
               nofp.E.roots_rerun;
           results := fp.E.results;
           prev := g1
         done;
         true))

let suites =
  [
    ( "churn",
      [
        prop_refresh_matches_full;
        prop_components_track_churn;
        prop_overlay_kernels_match_compact;
        prop_diff_roundtrip;
        Alcotest.test_case "overlay delete-only batch" `Quick
          test_overlay_delete_only;
        Alcotest.test_case "overlay edit cancellation and strictness" `Quick
          test_overlay_cancellation;
        Alcotest.test_case "lri remove keeps the weight ledger" `Quick
          test_lri_remove_accounting;
        Alcotest.test_case "lri re-added key not prematurely evicted" `Quick
          test_lri_readd_not_prematurely_evicted;
        Alcotest.test_case "neighborhood invalidation accounting" `Quick
          test_nh_invalidate_accounting;
        Alcotest.test_case "SGRDIFF1 in-memory codec (wire path)" `Quick
          test_diff_string_codec;
        Alcotest.test_case "SGRDIFF1 torn tail refused" `Quick
          test_diff_torn_tail_refused;
        Alcotest.test_case "SGRDIFF1 journal writer" `Quick
          test_diff_writer_journal;
        Alcotest.test_case "refresh argument validation" `Quick
          test_refresh_validation;
        Alcotest.test_case "refresh unsorted prior debug-asserted" `Quick
          test_refresh_unsorted_prior_asserted;
        prop_batch_fingerprint_refresh;
        Alcotest.test_case "SCLQIDX1 build and round trip" `Quick
          test_index_build_roundtrip;
        Alcotest.test_case "SCLQIDX1 retirement-order stream" `Quick
          test_index_build_unordered_stream;
        Alcotest.test_case "SCLQIDX1 refuses all corruption" `Quick
          test_index_codec_refusals;
        Alcotest.test_case "SCLQIDX1 splice differential" `Quick
          test_index_splice_differential;
      ] );
  ]
