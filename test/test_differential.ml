(* Cross-algorithm differential harness: every implementation of the
   paper — CsCliques1, CsCliques2 under all four pivot/feasibility
   switches, PolyDelayEnum under all four queue/index switches, and the
   domain-parallel decomposition — must emit exactly the same sorted
   set-of-sets on random Erdős–Rényi and scale-free graphs, and every
   emitted set must pass the Verify oracle. *)

module NS = Sgraph.Node_set
module E = Scliques_core.Enumerate
module C2 = Scliques_core.Cs_cliques2
module PD = Scliques_core.Poly_delay
module V = Scliques_core.Verify

let nh ~s g = Scliques_core.Neighborhood.create ~s g

let collect iter_fn =
  let acc = ref [] in
  iter_fn (fun c -> acc := c :: !acc);
  List.sort NS.compare !acc

(* Every algorithm variant under test, by name. The parameter sweep is
   the point: a bug hiding behind (say) pivoting without feasibility
   shows up as a mismatch against the other eleven. *)
let variants =
  let cs2 ~pivot ~feasibility g s =
    collect (C2.iter ~pivot ~feasibility (nh ~s g))
  in
  let pd ~queue_mode ~index_mode g s =
    collect (PD.iter ~queue_mode ~index_mode (nh ~s g))
  in
  [
    ("cs1", fun g s -> collect (Scliques_core.Cs_cliques1.iter (nh ~s g)));
    ("cs2", cs2 ~pivot:false ~feasibility:false);
    ("cs2-p", cs2 ~pivot:true ~feasibility:false);
    ("cs2-f", cs2 ~pivot:false ~feasibility:true);
    ("cs2-pf", cs2 ~pivot:true ~feasibility:true);
    ( "cs2-p-deg",
      fun g s ->
        collect (C2.iter ~pivot:true ~root_order:C2.Power_degeneracy (nh ~s g)) );
    ("pd-fifo-btree", pd ~queue_mode:PD.Fifo ~index_mode:PD.Btree);
    ("pd-fifo-hash", pd ~queue_mode:PD.Fifo ~index_mode:PD.Hashtable);
    ("pd-lf-btree", pd ~queue_mode:PD.Largest_first ~index_mode:PD.Btree);
    ("pd-lf-hash", pd ~queue_mode:PD.Largest_first ~index_mode:PD.Hashtable);
    (* split thresholds low enough that the work-stealing scheduler's
       expand/requeue path actually runs on graphs this small *)
    ( "parallel-3",
      fun g s ->
        Scliques_core.Parallel.enumerate ~workers:3 ~split_depth:4 ~split_width:2 g ~s
    );
  ]

(* (family, n, edge parameter, s, seed) — graphs up to 30 nodes; both the
   ER and preferential-attachment families from the paper's §7 setup.
   The size scales down with s: at s = 3 the power graph is near-complete
   and the deliberately unpruned variants (CS1, CS2 without pivoting)
   take seconds per case beyond ~20 nodes — the paper's own Figure 9
   shows them timing out first. *)
let arb_graph_case =
  let open QCheck2.Gen in
  let gen =
    oneofl [ `Er; `Sf ] >>= fun family ->
    int_range 1 3 >>= fun s ->
    int_range 2 (if s >= 3 then 16 else 30) >>= fun n ->
    int_range 0 (3 * n) >>= fun m ->
    int_range 0 1_000_000 >>= fun seed ->
    return (family, n, m, s, seed)
  in
  gen

let print_case (family, n, m, s, seed) =
  Printf.sprintf "(%s, n=%d, m=%d, s=%d, seed=%d)"
    (match family with `Er -> "er" | `Sf -> "sf")
    n m s seed

let graph_of_case (family, n, m, seed) =
  let rng = Scoll.Rng.create seed in
  match family with
  | `Er -> Sgraph.Gen.erdos_renyi_gnm rng ~n ~m:(min m (n * (n - 1) / 2))
  | `Sf -> Sgraph.Gen.barabasi_albert rng ~n ~m_attach:(min (n - 1) (1 + (m mod 3)))

let same_sets = List.equal NS.equal

let show_mismatch name expected actual =
  QCheck2.Test.fail_reportf
    "variant %s disagrees:@.expected %d sets: %a@.got %d sets: %a" name
    (List.length expected)
    (Fmt.Dump.list NS.pp) expected (List.length actual)
    (Fmt.Dump.list NS.pp) actual

let prop_all_variants_agree =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:120 ~name:"all 11 variants emit identical sorted sets"
       ~print:print_case arb_graph_case
       (fun (family, n, m, s, seed) ->
         let g = graph_of_case (family, n, m, seed) in
         let reference =
           match variants with
           | (_, run) :: _ -> run g s
           | [] -> assert false
         in
         List.for_all
           (fun (name, run) ->
             let got = run g s in
             same_sets reference got || show_mismatch name reference got)
           variants))

(* On oracle-sized graphs, also pin the common answer to brute force. *)
let prop_variants_match_oracle =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:80 ~name:"variants match the brute-force oracle (n<=12)"
       ~print:print_case
       QCheck2.Gen.(
         arb_graph_case >>= fun (family, n, m, s, seed) ->
         return (family, 2 + (n mod 11), m, s, seed))
       (fun (family, n, m, s, seed) ->
         let g = graph_of_case (family, n, m, seed) in
         let expected = Scliques_core.Brute_force.maximal_connected_s_cliques g ~s in
         List.for_all
           (fun (name, run) ->
             let got = run g s in
             same_sets expected got || show_mismatch name expected got)
           variants))

(* Soundness oracle, both directions of the paper's maximality test:
   emitted sets verify as maximal (extension_candidates empty), and
   dropping any node from a result yields a set that is either no longer
   a connected s-clique or demonstrably non-maximal. *)
let prop_results_are_maximal =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:80
       ~name:"every emitted set is a maximal connected s-clique" ~print:print_case
       arb_graph_case
       (fun (family, n, m, s, seed) ->
         let g = graph_of_case (family, n, m, seed) in
         let results = E.sorted_results E.Cs2_pf g ~s in
         (match V.certify g ~s results with
         | Ok () -> ()
         | Error e -> QCheck2.Test.fail_reportf "certify: %s" e);
         List.for_all
           (fun c ->
             V.is_maximal_connected_s_clique g ~s c
             && NS.is_empty (V.extension_candidates g ~s c))
           results))

let prop_extension_candidates_exact =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60
       ~name:"extension_candidates empty exactly on maximal sets" ~print:print_case
       QCheck2.Gen.(
         arb_graph_case >>= fun (family, n, m, s, seed) ->
         return (family, 2 + (n mod 9), m, s, seed))
       (fun (family, n, m, s, seed) ->
         let g = graph_of_case (family, n, m, seed) in
         (* all nonempty connected s-cliques, maximal or not *)
         let all = Scliques_core.Brute_force.connected_s_cliques g ~s in
         List.for_all
           (fun c ->
             let maximal = V.is_maximal_connected_s_clique g ~s c in
             let ext = V.extension_candidates g ~s c in
             maximal = NS.is_empty ext
             (* and the candidates really extend: each one yields a
                bigger connected s-clique *)
             && NS.for_all
                  (fun v -> V.is_connected_s_clique g ~s (NS.add v c))
                  ext)
           all))

(* Regression for the schedule-independence guarantee of the
   work-stealing Parallel.enumerate: the returned list must be
   bit-identical for every worker count, and equal to the sequential
   sweep. A failure names the full (family, n, m, s, seed, workers)
   tuple so the case replays deterministically. *)
let prop_parallel_worker_independent =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:40
       ~name:"Parallel.enumerate independent of worker count" ~print:print_case
       arb_graph_case
       (fun (family, n, m, s, seed) ->
         let g = graph_of_case (family, n, m, seed) in
         let sequential = E.sorted_results E.Cs2_p g ~s in
         List.for_all
           (fun workers ->
             let got = Scliques_core.Parallel.enumerate ~workers g ~s in
             same_sets sequential got
             || show_mismatch
                  (Printf.sprintf "%s workers=%d" (print_case (family, n, m, s, seed))
                     workers)
                  sequential got)
           [ 1; 2; 4 ]))

(* The split thresholds decide WHERE subtrees run, never WHAT they emit:
   disabled splitting, shallow-aggressive and deep-aggressive settings
   must all reproduce the sequential result sets. *)
let prop_parallel_split_independent =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:30
       ~name:"Parallel.enumerate independent of steal/split thresholds"
       ~print:print_case arb_graph_case
       (fun (family, n, m, s, seed) ->
         let g = graph_of_case (family, n, m, seed) in
         let sequential = E.sorted_results E.Cs2_p g ~s in
         List.for_all
           (fun (split_depth, split_width) ->
             let got =
               Scliques_core.Parallel.enumerate ~workers:3 ~split_depth ~split_width g
                 ~s
             in
             same_sets sequential got
             || show_mismatch
                  (Printf.sprintf "%s workers=3 split_depth=%d split_width=%d"
                     (print_case (family, n, m, s, seed))
                     split_depth split_width)
                  sequential got)
           [ (0, 8); (2, 4); (6, 2); (100, 1) ]))

(* Same configuration twice in a row: scheduling noise (who stole what,
   in which order) must not leak into the canonicalized output. *)
let prop_parallel_deterministic =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:25
       ~name:"Parallel.enumerate deterministic across repeated runs"
       ~print:print_case arb_graph_case
       (fun (family, n, m, s, seed) ->
         let g = graph_of_case (family, n, m, seed) in
         let run () =
           Scliques_core.Parallel.enumerate ~workers:4 ~split_depth:3 ~split_width:2 g
             ~s
         in
         let first = run () and second = run () in
         same_sets first second
         || show_mismatch
              (Printf.sprintf "%s rerun" (print_case (family, n, m, s, seed)))
              first second))

let test_parallel_scheduler_stats () =
  (* accounting invariants of the stats block on a graph big enough that
     splitting actually happens *)
  let g = Sgraph.Gen.barabasi_albert (Scoll.Rng.create 11) ~n:60 ~m_attach:3 in
  let results, stats =
    Scliques_core.Parallel.enumerate_with_stats ~workers:4 ~split_depth:3
      ~split_width:2 g ~s:2
  in
  let sum = Array.fold_left ( + ) 0 in
  Alcotest.(check int)
    "per-worker results sum to the total" (List.length results)
    (sum stats.Scliques_core.Parallel.results_per_worker);
  Alcotest.(check bool)
    "tasks cover at least the root branches" true
    (sum stats.Scliques_core.Parallel.tasks_per_worker >= Sgraph.Graph.n g);
  Alcotest.(check bool)
    "splits were exercised at these thresholds" true
    (stats.Scliques_core.Parallel.splits > 0);
  Alcotest.(check bool)
    "steal count is sane" true
    (stats.Scliques_core.Parallel.steals >= 0
    && stats.Scliques_core.Parallel.steals
       <= sum stats.Scliques_core.Parallel.tasks_per_worker)

let test_parallel_fixed_graph () =
  (* deterministic pin of the same guarantee on one scale-free instance *)
  let g = Sgraph.Gen.barabasi_albert (Scoll.Rng.create 7) ~n:40 ~m_attach:2 in
  let reference = Scliques_core.Parallel.enumerate ~workers:1 g ~s:2 in
  List.iter
    (fun workers ->
      Test_support.check_sets
        (Printf.sprintf "workers=%d" workers)
        reference
        (Scliques_core.Parallel.enumerate ~workers g ~s:2))
    [ 2; 4 ]

let suites =
  [
    ( "differential",
      [
        prop_all_variants_agree;
        prop_variants_match_oracle;
        prop_results_are_maximal;
        prop_extension_candidates_exact;
      ] );
    ( "parallel_canonical",
      [
        prop_parallel_worker_independent;
        prop_parallel_split_independent;
        prop_parallel_deterministic;
        Alcotest.test_case "fixed graph, workers 1/2/4" `Quick
          test_parallel_fixed_graph;
        Alcotest.test_case "scheduler stats invariants" `Quick
          test_parallel_scheduler_stats;
      ] );
  ]
