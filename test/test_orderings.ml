(* The ω-orderings of Lemma 5.3, including the paper's Example 5.2. *)

module G = Sgraph.Graph
module NS = Sgraph.Node_set
module O = Scliques_core.Orderings

let check = Alcotest.check
let int_list = Alcotest.(list Alcotest.int)
let bool = Alcotest.bool

(* The graph G' of the paper's Figure 2 with the ids of Example 5.2's
   ordering ≺: v1,v2,v3 = 0,1,2; w = 3; u_{1,2},u_{1,3},u_{2,1},u_{2,3},
   u_{3,1},u_{3,2} = 4..9; v'1,v'2,v'3 = 10,11,12; w' = 13. *)
let paper_gprime () =
  let v = [| 0; 1; 2 |] and w = 3 and w' = 13 in
  let v' = [| 10; 11; 12 |] in
  let u = function
    | 1, 2 -> 4 | 1, 3 -> 5 | 2, 1 -> 6 | 2, 3 -> 7 | 3, 1 -> 8 | 3, 2 -> 9
    | _ -> invalid_arg "u"
  in
  let edges = ref [ (w, w') ] in
  for i = 1 to 3 do
    edges := (v.(i - 1), w) :: (v'.(i - 1), w') :: !edges;
    for j = 1 to 3 do
      if i <> j then edges := (v.(i - 1), u (i, j)) :: (u (i, j), v'.(j - 1)) :: !edges
    done
  done;
  G.of_edges ~n:14 !edges

let tests =
  [
    Alcotest.test_case "example 5.2: omega1 of {v1, v'2, w, w', u12}" `Quick
      (fun () ->
        (* the paper: ω1(C) = v1, w, u_{1,2}, v'2, w'.
           With our ids: 0, 3, 4, 11, 13. *)
        let g = paper_gprime () in
        let c = NS.of_list [ 0; 11; 3; 13; 4 ] in
        check int_list "paper's order" [ 0; 3; 4; 11; 13 ] (O.omega1 g c));
    Alcotest.test_case "example 5.2: omega2 is plain ascending" `Quick (fun () ->
        let c = NS.of_list [ 0; 11; 3; 13; 4 ] in
        check int_list "sorted" [ 0; 3; 4; 11; 13 ] (O.omega2 c));
    Alcotest.test_case "omega1 differs from omega2 when low ids are far" `Quick
      (fun () ->
        (* path 0-2-1: ascending order 0,1 is not connected-prefix *)
        let g = G.of_edges ~n:3 [ (0, 2); (2, 1) ] in
        let c = NS.of_list [ 0; 1; 2 ] in
        check int_list "omega2" [ 0; 1; 2 ] (O.omega2 c);
        check int_list "omega1 takes 2 before 1" [ 0; 2; 1 ] (O.omega1 g c));
    Alcotest.test_case "omega1 prefixes are connected (random)" `Quick (fun () ->
        let rng = Scoll.Rng.create 41 in
        for _ = 1 to 20 do
          let n = 3 + Scoll.Rng.int rng 10 in
          let g = Sgraph.Gen.erdos_renyi_gnm rng ~n ~m:(min (2 * n) (n * (n - 1) / 2)) in
          let comp = Sgraph.Components.largest g in
          let order = O.omega1 g comp in
          check bool "valid prefix order" true (O.is_connected_prefix_order g order);
          check int_list "permutation of the component" (NS.to_list comp)
            (List.sort compare order)
        done);
    Alcotest.test_case "omega1 rejects disconnected sets" `Quick (fun () ->
        let g = G.of_edges ~n:4 [ (0, 1); (2, 3) ] in
        Alcotest.check_raises "disconnected"
          (Invalid_argument "Orderings.omega1: set does not induce a connected subgraph")
          (fun () -> ignore (O.omega1 g (NS.of_list [ 0; 2 ]))));
    Alcotest.test_case "empty and singleton sets" `Quick (fun () ->
        let g = G.empty 2 in
        check int_list "empty" [] (O.omega1 g NS.empty);
        check int_list "singleton" [ 1 ] (O.omega1 g (NS.singleton 1)));
    Alcotest.test_case "is_connected_prefix_order detects violations" `Quick
      (fun () ->
        let g = Sgraph.Gen.path 4 in
        check bool "good" true (O.is_connected_prefix_order g [ 1; 2; 0; 3 ]);
        check bool "bad" false (O.is_connected_prefix_order g [ 0; 2; 1; 3 ]));
  ]

let suites = [ ("orderings", tests) ]
