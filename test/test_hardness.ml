(* The Theorem 5.6 reduction: 3-SAT ↔ extendability of an s-clique. *)

module H = Scliques_core.Hardness
module NS = Sgraph.Node_set

let check = Alcotest.check
let bool = Alcotest.bool

let lit v n = { H.variable = v; H.negated = n }

(* the formula from the paper's Figure 8 *)
let paper_psi =
  [ (lit 1 false, lit 2 true, lit 3 false);
    (lit 1 false, lit 2 false, lit 3 false);
    (lit 1 true, lit 2 true, lit 3 false) ]

let unsat_psi =
  [ (lit 0 false, lit 0 false, lit 0 false); (lit 0 true, lit 0 true, lit 0 true) ]

let unit_tests =
  [
    Alcotest.test_case "satisfiable: brute-force basics" `Quick (fun () ->
        check bool "paper formula" true (H.satisfiable paper_psi);
        check bool "x and not-x" false (H.satisfiable unsat_psi);
        check bool "empty formula" true (H.satisfiable []));
    Alcotest.test_case "reduce rejects bad inputs" `Quick (fun () ->
        Alcotest.check_raises "s=1" (Invalid_argument "Hardness.reduce: requires s > 1")
          (fun () -> ignore (H.reduce paper_psi ~s:1));
        Alcotest.check_raises "empty" (Invalid_argument "Hardness.reduce: empty formula")
          (fun () -> ignore (H.reduce [] ~s:2));
        Alcotest.check_raises "tautological clause"
          (Invalid_argument "Hardness.reduce: clause contains a variable and its negation")
          (fun () -> ignore (H.reduce [ (lit 0 false, lit 0 true, lit 1 false) ] ~s:2)));
    Alcotest.test_case "seed is an s-clique (both formulas, s=2 and s=3)" `Quick
      (fun () ->
        List.iter
          (fun s ->
            check bool "paper" true (H.seed_is_s_clique (H.reduce paper_psi ~s));
            check bool "unsat" true (H.seed_is_s_clique (H.reduce unsat_psi ~s)))
          [ 2; 3 ]);
    Alcotest.test_case "figure 8 distances: conflicting literals stay far" `Quick
      (fun () ->
        (* the paper highlights x_1^2 (literal ¬X2 of clause 1) and x_2^2
           (literal X2 of clause 2): no path of length <= 2 between them *)
        let r = H.reduce paper_psi ~s:2 in
        let u = r.H.literal_node 0 1 and v = r.H.literal_node 1 1 in
        let d = Sgraph.Bfs.distance r.H.graph u v in
        check bool "distance > 2" true (d > 2 || d < 0));
    Alcotest.test_case "non-conflicting original pairs end up within s" `Quick
      (fun () ->
        let r = H.reduce paper_psi ~s:2 in
        let g = r.H.graph in
        NS.iter
          (fun u ->
            NS.iter
              (fun v ->
                if u < v then begin
                  let d = Sgraph.Bfs.distance g u v in
                  (* either they conflict (far) or they are within s *)
                  check bool
                    (Printf.sprintf "pair %d-%d" u v)
                    true
                    (d > r.H.s || d < 0
                    || (d >= 1 && d <= r.H.s))
                end)
              r.H.original_nodes)
          r.H.original_nodes);
    Alcotest.test_case "satisfiable formula: feasible, with explicit witness" `Quick
      (fun () ->
        let r = H.reduce paper_psi ~s:2 in
        check bool "feasible" true (H.feasible r);
        (* X3 = true satisfies every clause *)
        let w = H.witness_of_assignment r paper_psi (fun v -> v = 3) in
        check bool "witness is a connected 2-clique" true
          (Scliques_core.Verify.is_connected_s_clique r.H.graph ~s:2 w);
        check bool "witness contains the seed" true (NS.subset r.H.seed w));
    Alcotest.test_case "unsatisfiable formula: not feasible" `Quick (fun () ->
        check bool "infeasible" false (H.feasible (H.reduce unsat_psi ~s:2)));
    Alcotest.test_case "unsatisfiable formula at s=3: not feasible" `Quick (fun () ->
        check bool "infeasible" false (H.feasible (H.reduce unsat_psi ~s:3)));
    Alcotest.test_case "two-clause equivalence sweep" `Quick (fun () ->
        (* all two-clause formulas over variables {0,1} with uniform
           literals per clause: satisfiable iff feasible *)
        let all_lits = [ lit 0 false; lit 0 true; lit 1 false; lit 1 true ] in
        List.iter
          (fun l1 ->
            List.iter
              (fun l2 ->
                let cnf = [ (l1, l1, l1); (l2, l2, l2) ] in
                let expected = H.satisfiable cnf in
                let r = H.reduce cnf ~s:2 in
                check bool
                  (Printf.sprintf "(%d,%b)(%d,%b)" l1.H.variable l1.H.negated
                     l2.H.variable l2.H.negated)
                  expected (H.feasible r))
              all_lits)
          all_lits);
  ]

let suites = [ ("hardness", unit_tests) ]
