(* Graph storage, Builder, and edge-list I/O. *)

module G = Sgraph.Graph
module NS = Sgraph.Node_set

let check = Alcotest.check
let int = Alcotest.int
let string = Alcotest.string
let bool = Alcotest.bool
let ns = Test_support.ns

let triangle () = G.of_edges ~n:3 [ (0, 1); (1, 2); (0, 2) ]

let graph_tests =
  [
    Alcotest.test_case "of_edges basic" `Quick (fun () ->
        let g = triangle () in
        check int "n" 3 (G.n g);
        check int "m" 3 (G.m g);
        check bool "edge 0-1" true (G.mem_edge g 0 1);
        check bool "edge 1-0 (symmetric)" true (G.mem_edge g 1 0);
        check bool "no self edge" false (G.mem_edge g 1 1));
    Alcotest.test_case "of_edges dedups and drops loops" `Quick (fun () ->
        let g = G.of_edges ~n:3 [ (0, 1); (1, 0); (0, 1); (2, 2) ] in
        check int "one edge" 1 (G.m g);
        check int "deg 2 is 0" 0 (G.degree g 2));
    Alcotest.test_case "of_edges rejects out-of-range" `Quick (fun () ->
        Alcotest.check_raises "edge (0,3)"
          (Invalid_argument "Graph.of_edges: edge (0,3) out of range (n=3)") (fun () ->
            ignore (G.of_edges ~n:3 [ (0, 3) ])));
    Alcotest.test_case "empty graph" `Quick (fun () ->
        let g = G.empty 5 in
        check int "n" 5 (G.n g);
        check int "m" 0 (G.m g);
        check int "max_degree" 0 (G.max_degree g));
    Alcotest.test_case "empty rejects negative n" `Quick (fun () ->
        Alcotest.check_raises "negative" (Invalid_argument "Graph.empty: negative n (-3)")
          (fun () -> ignore (G.empty (-3))));
    Alcotest.test_case "neighbors sorted" `Quick (fun () ->
        let g = G.of_edges ~n:5 [ (2, 4); (2, 0); (2, 3) ] in
        check (Alcotest.array int) "sorted" [| 0; 3; 4 |] (G.neighbors g 2));
    Alcotest.test_case "degree" `Quick (fun () ->
        let g = triangle () in
        check int "deg" 2 (G.degree g 0));
    Alcotest.test_case "nodes" `Quick (fun () ->
        check ns "0..2" (NS.of_list [ 0; 1; 2 ]) (G.nodes (triangle ())));
    Alcotest.test_case "iter_edges each once with u<v" `Quick (fun () ->
        let g = triangle () in
        let acc = ref [] in
        G.iter_edges (fun u v -> acc := (u, v) :: !acc) g;
        check (Alcotest.list (Alcotest.pair int int)) "edges" [ (0, 1); (0, 2); (1, 2) ]
          (List.sort compare !acc));
    Alcotest.test_case "edges function" `Quick (fun () ->
        check (Alcotest.list (Alcotest.pair int int)) "edges" [ (0, 1); (0, 2); (1, 2) ]
          (G.edges (triangle ())));
    Alcotest.test_case "of_adjacency validates symmetry" `Quick (fun () ->
        Alcotest.check_raises "asymmetric"
          (Invalid_argument "Graph.of_adjacency: edge 0->1 not symmetric") (fun () ->
            ignore (G.of_adjacency [| [| 1 |]; [||] |])));
    Alcotest.test_case "of_adjacency validates sorting" `Quick (fun () ->
        Alcotest.check_raises "unsorted"
          (Invalid_argument "Graph.of_adjacency: neighbors of 0 not strictly sorted")
          (fun () -> ignore (G.of_adjacency [| [| 2; 1 |]; [| 0 |]; [| 0 |] |])));
    Alcotest.test_case "of_adjacency rejects self-loop" `Quick (fun () ->
        Alcotest.check_raises "loop" (Invalid_argument "Graph.of_adjacency: self-loop at 0")
          (fun () -> ignore (G.of_adjacency [| [| 0 |] |])));
    Alcotest.test_case "of_unsorted_adjacency sorts and dedups" `Quick (fun () ->
        let g = G.of_unsorted_adjacency [| [| 2; 1; 2 |]; [| 0 |]; [| 0; 0 |] |] in
        check int "m" 2 (G.m g);
        check (Alcotest.array int) "sorted row" [| 1; 2 |] (G.neighbors g 0));
    Alcotest.test_case "induced subgraph" `Quick (fun () ->
        let g = G.of_edges ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0); (1, 3) ] in
        let sub, back = G.induced g (NS.of_list [ 1; 2; 3 ]) in
        check int "3 nodes" 3 (G.n sub);
        check int "3 edges (1-2, 2-3, 1-3)" 3 (G.m sub);
        check (Alcotest.array int) "mapping" [| 1; 2; 3 |] back;
        check bool "edge 0-1 (orig 1-2)" true (G.mem_edge sub 0 1));
    Alcotest.test_case "induced of empty set" `Quick (fun () ->
        let sub, back = G.induced (triangle ()) NS.empty in
        check int "0 nodes" 0 (G.n sub);
        check int "empty mapping" 0 (Array.length back));
    Alcotest.test_case "equal" `Quick (fun () ->
        check bool "same" true (G.equal (triangle ()) (triangle ()));
        check bool "different" false (G.equal (triangle ()) (G.empty 3)));
    Alcotest.test_case "mem_edge bounds-checks" `Quick (fun () ->
        Alcotest.check_raises "oob" (Invalid_argument "Graph: node 9 out of range (n=3)")
          (fun () -> ignore (G.mem_edge (triangle ()) 0 9)));
    Alcotest.test_case "fold_edges accumulates each edge once" `Quick (fun () ->
        let g = Sgraph.Gen.cycle 5 in
        check int "edge count via fold" 5 (G.fold_edges (fun _ _ acc -> acc + 1) g 0);
        check int "endpoint sum" 20 (G.fold_edges (fun u v acc -> acc + u + v) g 0));
    Alcotest.test_case "pp summary" `Quick (fun () ->
        check Alcotest.string "format" "graph(n=3, m=3, max_deg=2)"
          (Format.asprintf "%a" G.pp (triangle ())));
    Alcotest.test_case "neighbor_set shares the graph's view" `Quick (fun () ->
        let g = triangle () in
        check Test_support.ns ".. of 0" (NS.of_list [ 1; 2 ]) (G.neighbor_set g 0));
  ]

let csr_tests =
  let module C = Sgraph.Csr in
  [
    Alcotest.test_case "of_rows round trips" `Quick (fun () ->
        let rows = [| [| 1; 2 |]; [| 0 |]; [| 0 |] |] in
        let c = C.of_rows rows in
        check int "n" 3 (C.n c);
        check int "entries" 4 (C.entries c);
        check (Alcotest.array (Alcotest.array int)) "rows" rows (C.to_rows c));
    Alcotest.test_case "of_arrays validates offsets" `Quick (fun () ->
        Alcotest.check_raises "decreasing"
          (Invalid_argument "Csr.of_arrays: offsets decrease at 2 (1 < 2)") (fun () ->
            ignore (C.of_arrays ~offsets:[| 0; 2; 1 |] ~adjacency:[| 1; 0 |]));
        Alcotest.check_raises "bad end"
          (Invalid_argument "Csr.of_arrays: offsets end at 1 but adjacency has 2 entries")
          (fun () -> ignore (C.of_arrays ~offsets:[| 0; 1 |] ~adjacency:[| 1; 0 |])));
    Alcotest.test_case "iter/fold/mem over a row" `Quick (fun () ->
        let c = C.of_rows [| [| 1; 2 |]; [| 0; 2 |]; [| 0; 1 |] |] in
        let acc = ref [] in
        C.iter_row (fun u -> acc := u :: !acc) c 1;
        check (Alcotest.list int) "iter" [ 2; 0 ] !acc;
        check int "fold sum" 2 (C.fold_row (fun a u -> a + u) 0 c 1);
        check bool "mem hit" true (C.mem_row c 0 2);
        check bool "mem miss" false (C.mem_row c 1 1));
    Alcotest.test_case "row copies are independent" `Quick (fun () ->
        let c = C.of_rows [| [| 1 |]; [| 0 |] |] in
        let r = C.row c 0 in
        r.(0) <- 99;
        check (Alcotest.array int) "unchanged" [| 1 |] (C.row c 0));
    Alcotest.test_case "graph csr accessor is the storage" `Quick (fun () ->
        let g = triangle () in
        let c = G.csr g in
        check int "offsets length" 4 (Array.length (C.offsets c));
        check int "adjacency length" 6 (Array.length (C.adjacency c));
        check int "degree via csr" 2 (C.degree c 1));
    Alcotest.test_case "iter_neighbors matches neighbors" `Quick (fun () ->
        let g = G.of_edges ~n:5 [ (2, 4); (2, 0); (2, 3) ] in
        let acc = ref [] in
        G.iter_neighbors (fun u -> acc := u :: !acc) g 2;
        check (Alcotest.list int) "order" [ 4; 3; 0 ] !acc;
        check int "fold count" 3 (G.fold_neighbors (fun a _ -> a + 1) 0 g 2));
    Alcotest.test_case "relabel by reversal" `Quick (fun () ->
        (* path 0-1-2 relabeled by order [|2;1;0|]: new 0 is old 2 *)
        let g = G.of_edges ~n:3 [ (0, 1); (1, 2) ] in
        let r = G.relabel g ~order:[| 2; 1; 0 |] in
        check int "n" 3 (G.n r);
        check int "m" 2 (G.m r);
        check bool "new edge 0-1 (old 2-1)" true (G.mem_edge r 0 1);
        check bool "no edge 0-2 (old 2-0)" false (G.mem_edge r 0 2));
    Alcotest.test_case "relabel identity preserves the graph" `Quick (fun () ->
        let g = Sgraph.Gen.erdos_renyi (Scoll.Rng.create 7) ~n:40 ~avg_degree:5. in
        let r = G.relabel g ~order:(Array.init (G.n g) Fun.id) in
        check bool "equal" true (G.equal g r));
    Alcotest.test_case "relabel validates the permutation" `Quick (fun () ->
        let g = triangle () in
        Alcotest.check_raises "length"
          (Invalid_argument "Graph.relabel: order has 2 entries for 3 nodes") (fun () ->
            ignore (G.relabel g ~order:[| 0; 1 |]));
        Alcotest.check_raises "range"
          (Invalid_argument "Graph.relabel: order lists node 7 (n=3)") (fun () ->
            ignore (G.relabel g ~order:[| 0; 1; 7 |]));
        Alcotest.check_raises "duplicate"
          (Invalid_argument "Graph.relabel: node 1 listed twice") (fun () ->
            ignore (G.relabel g ~order:[| 1; 1; 0 |])));
    Alcotest.test_case "degeneracy relabel keeps enumeration results" `Quick (fun () ->
        let g = Sgraph.Gen.social_proxy (Scoll.Rng.create 3) ~n:60 ~avg_degree:6. ~communities:4 in
        let order = Sgraph.Degeneracy.ordering g in
        let r = G.relabel g ~order in
        check int "same m" (G.m g) (G.m r);
        check int "same degeneracy" (Sgraph.Degeneracy.degeneracy g)
          (Sgraph.Degeneracy.degeneracy r));
  ]

let builder_tests =
  [
    Alcotest.test_case "incremental build" `Quick (fun () ->
        let b = Sgraph.Builder.create () in
        Sgraph.Builder.add_edge b 0 1;
        Sgraph.Builder.add_edge b 1 2;
        let g = Sgraph.Builder.build b in
        check int "n" 3 (G.n g);
        check int "m" 2 (G.m g));
    Alcotest.test_case "auto-grows to max id" `Quick (fun () ->
        let b = Sgraph.Builder.create ~expected_nodes:2 () in
        Sgraph.Builder.add_edge b 0 99;
        check int "node_count" 100 (Sgraph.Builder.node_count b);
        check int "n" 100 (G.n (Sgraph.Builder.build b)));
    Alcotest.test_case "isolated nodes via add_node" `Quick (fun () ->
        let b = Sgraph.Builder.create () in
        Sgraph.Builder.add_node b 4;
        let g = Sgraph.Builder.build b in
        check int "5 nodes" 5 (G.n g);
        check int "no edges" 0 (G.m g));
    Alcotest.test_case "self-loops dropped" `Quick (fun () ->
        let b = Sgraph.Builder.create () in
        Sgraph.Builder.add_edge b 3 3;
        let g = Sgraph.Builder.build b in
        check int "4 nodes" 4 (G.n g);
        check int "no edges" 0 (G.m g));
    Alcotest.test_case "duplicate edges collapse" `Quick (fun () ->
        let b = Sgraph.Builder.create () in
        Sgraph.Builder.add_edge b 0 1;
        Sgraph.Builder.add_edge b 1 0;
        Sgraph.Builder.add_edge b 0 1;
        check int "3 insertions" 3 (Sgraph.Builder.edge_count b);
        check int "1 edge" 1 (G.m (Sgraph.Builder.build b)));
    Alcotest.test_case "negative id rejected" `Quick (fun () ->
        let b = Sgraph.Builder.create () in
        Alcotest.check_raises "negative" (Invalid_argument "Builder.add_edge: negative id")
          (fun () -> Sgraph.Builder.add_edge b (-1) 2));
    Alcotest.test_case "builder reusable after build" `Quick (fun () ->
        let b = Sgraph.Builder.create () in
        Sgraph.Builder.add_edge b 0 1;
        ignore (Sgraph.Builder.build b);
        Sgraph.Builder.add_edge b 1 2;
        check int "2 edges now" 2 (G.m (Sgraph.Builder.build b)));
    Alcotest.test_case "empty builder builds empty graph" `Quick (fun () ->
        check int "0 nodes" 0 (G.n (Sgraph.Builder.build (Sgraph.Builder.create ()))));
    Alcotest.test_case "many edges force growth" `Quick (fun () ->
        let b = Sgraph.Builder.create () in
        for i = 0 to 999 do
          Sgraph.Builder.add_edge b i (i + 1)
        done;
        let g = Sgraph.Builder.build b in
        check int "path of 1001" 1000 (G.m g));
  ]

let io_tests =
  let module Io = Sgraph.Edge_list_io in
  [
    Alcotest.test_case "parse basic" `Quick (fun () ->
        let g = Io.parse_string "0 1\n1 2\n" in
        check int "n" 3 (G.n g);
        check int "m" 2 (G.m g));
    Alcotest.test_case "comments and blanks ignored" `Quick (fun () ->
        let g = Io.parse_string "# header\n\n0 1\n   # indented comment\n\n1 2\n" in
        check int "m" 2 (G.m g));
    Alcotest.test_case "whitespace flexibility" `Quick (fun () ->
        let g = Io.parse_string "0\t1\n  1   2  \r\n" in
        check int "m" 2 (G.m g));
    Alcotest.test_case "lone id declares isolated node" `Quick (fun () ->
        let g = Io.parse_string "0 1\n5\n" in
        check int "n includes 5" 6 (G.n g);
        check int "m" 1 (G.m g));
    Alcotest.test_case "malformed token reports line" `Quick (fun () ->
        Alcotest.check_raises "bad token"
          (Sgraph.Io_error.Parse_error
             { file = "<string>"; line = 2; msg = "expected a node id, got \"x\"" })
          (fun () -> ignore (Io.parse_string "0 1\n0 x\n")));
    Alcotest.test_case "negative id reports line" `Quick (fun () ->
        Alcotest.check_raises "negative"
          (Sgraph.Io_error.Parse_error
             { file = "<string>"; line = 1; msg = "negative node id \"-2\"" })
          (fun () -> ignore (Io.parse_string "-2 1\n")));
    Alcotest.test_case "trailing garbage rejected" `Quick (fun () ->
        Alcotest.check_raises "trailing"
          (Sgraph.Io_error.Parse_error
             { file = "<string>"; line = 1; msg = "trailing characters after edge" })
          (fun () -> ignore (Io.parse_string "0 1 2\n")));
    Alcotest.test_case "load reports file name in error" `Quick (fun () ->
        let path = Filename.temp_file "scliques" ".edges" in
        let oc = open_out path in
        output_string oc "0 1\nbogus line\n";
        close_out oc;
        (match Io.load path with
        | exception Sgraph.Io_error.Parse_error { file; line; _ } ->
            check string "file" path file;
            check int "line" 2 line
        | _ -> Alcotest.fail "expected Parse_error");
        Sys.remove path);
    Alcotest.test_case "file round trip" `Quick (fun () ->
        let g = Sgraph.Gen.erdos_renyi (Scoll.Rng.create 5) ~n:50 ~avg_degree:4. in
        let path = Filename.temp_file "scliques" ".edges" in
        Io.save g path;
        let g' = Io.load path in
        Sys.remove path;
        check bool "round trip equal" true (G.equal g g'));
    Alcotest.test_case "round trip keeps isolated nodes" `Quick (fun () ->
        let g = G.of_edges ~n:6 [ (0, 1) ] in
        let g' = Io.parse_string (Io.to_string g) in
        check int "n preserved" 6 (G.n g');
        check bool "equal" true (G.equal g g'));
    Alcotest.test_case "to_string format" `Quick (fun () ->
        let g = G.of_edges ~n:2 [ (0, 1) ] in
        check Alcotest.string "exact" "# undirected graph: 2 nodes, 1 edges\n0 1\n"
          (Io.to_string g));
    Alcotest.test_case "load missing file raises Sys_error" `Quick (fun () ->
        match Io.load "/nonexistent/there.edges" with
        | exception Sys_error _ -> ()
        | _ -> Alcotest.fail "expected Sys_error");
  ]

let suites =
  [
    ("graph", graph_tests);
    ("csr", csr_tests);
    ("builder", builder_tests);
    ("edge_list_io", io_tests);
  ]
