(* The generic connected-hereditary enumeration engine (CKS framework)
   and its three instantiations. *)

module H = Scliques_core.Hereditary
module NS = Sgraph.Node_set
module G = Sgraph.Graph
module E = Scliques_core.Enumerate

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let of_l = NS.of_list

let agree g prop =
  let a = H.all g prop and b = H.brute_force g prop in
  List.length a = List.length b && List.for_all2 NS.equal a b

let unit_tests =
  [
    Alcotest.test_case "clique property equals Bron-Kerbosch" `Quick (fun () ->
        let g = Test_support.random_graph 90 ~n:25 ~m:60 in
        check Test_support.ns_list "same cliques"
          (List.sort NS.compare (Scliques_core.Bron_kerbosch.maximal_cliques g))
          (H.all g H.clique));
    Alcotest.test_case "s-clique property equals PolyDelayEnum" `Quick (fun () ->
        let g = Test_support.random_graph 91 ~n:30 ~m:70 in
        List.iter
          (fun s ->
            check Test_support.ns_list
              (Printf.sprintf "s=%d" s)
              (E.sorted_results E.Poly_delay g ~s)
              (H.all g (H.s_clique ~s)))
          [ 1; 2; 3 ]);
    Alcotest.test_case "k=1 plexes are exactly the cliques" `Quick (fun () ->
        let g = Test_support.random_graph 92 ~n:10 ~m:25 in
        check Test_support.ns_list "same" (H.all g H.clique) (H.all g (H.k_plex ~k:1)));
    Alcotest.test_case "figure 1 k-plexes: 2-plex absorbs the near-clique" `Quick
      (fun () ->
        (* {a,b,c,d} misses only the a-d edge: every member has >= 2 of 3
           possible neighbors, so it is a connected 2-plex *)
        let g = fst (Sgraph.Gen.figure1 ()) in
        let plexes = H.all g (H.k_plex ~k:2) in
        check bool "{a,b,c,d} found" true
          (List.exists (NS.equal (of_l [ 0; 1; 2; 3 ])) plexes));
    Alcotest.test_case "engine matches oracle: cliques, s-cliques, k-plexes" `Quick
      (fun () ->
        let rng = Scoll.Rng.create 93 in
        for _ = 1 to 12 do
          let n = 4 + Scoll.Rng.int rng 6 in
          let m = Scoll.Rng.int rng ((n * (n - 1) / 2) + 1) in
          let g = Sgraph.Gen.erdos_renyi_gnm rng ~n ~m in
          List.iter
            (fun prop ->
              check bool
                (Printf.sprintf "%s n=%d m=%d" prop.H.name n m)
                true (agree g prop))
            [ H.clique; H.s_clique ~s:2; H.k_plex ~k:2; H.k_plex ~k:3 ]
        done);
    Alcotest.test_case "every emitted k-plex is maximal (soundness)" `Quick (fun () ->
        let g = Test_support.random_graph 94 ~n:9 ~m:18 in
        let prop = H.k_plex ~k:2 in
        let holds = prop.H.build g in
        List.iter
          (fun plex ->
            check bool "is a k-plex" true (holds plex);
            check bool "connected" true (Sgraph.Bfs.is_connected_subset g plex);
            G.iter_nodes
              (fun v ->
                if not (NS.mem v plex) then
                  check bool "not single-extensible" true
                    (not
                       (Sgraph.Bfs.is_connected_subset g (NS.add v plex)
                       && holds (NS.add v plex))))
              g)
          (H.all g prop));
    Alcotest.test_case "disconnected graphs" `Quick (fun () ->
        let g = G.of_edges ~n:6 [ (0, 1); (1, 2); (3, 4) ] in
        check Test_support.ns_list "2-cliques per component"
          [ of_l [ 0; 1; 2 ]; of_l [ 3; 4 ]; of_l [ 5 ] ]
          (H.all g (H.s_clique ~s:2)));
    Alcotest.test_case "should_continue stops the queue" `Quick (fun () ->
        let g = Test_support.random_graph 95 ~n:30 ~m:80 in
        let seen = ref 0 in
        H.iter ~should_continue:(fun () -> !seen < 2) g (H.s_clique ~s:2) (fun _ ->
            incr seen);
        check bool "stopped" true (!seen <= 2));
    Alcotest.test_case "bad parameters rejected" `Quick (fun () ->
        Alcotest.check_raises "s=0" (Invalid_argument "Hereditary.s_clique: s must be >= 1")
          (fun () -> ignore (H.s_clique ~s:0));
        Alcotest.check_raises "k=0" (Invalid_argument "Hereditary.k_plex: k must be >= 1")
          (fun () -> ignore (H.k_plex ~k:0)));
    Alcotest.test_case "oracle size cap" `Quick (fun () ->
        match H.brute_force (G.empty 23) H.clique with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "greedy carve alone is incomplete for k-plexes" `Quick
      (fun () ->
        (* why CKS's input-restricted problem matters: pretending the
           k-plex carve is unique (as it is for s-cliques) must lose
           results on some graph — the engine stays sound but incomplete,
           which is exactly why efficient k-plex enumeration (the paper's
           citation [3]) is a separate contribution *)
        let cheat = { (H.k_plex ~k:2) with H.carve_unique = true } in
        let honest = H.k_plex ~k:2 in
        let rng = Scoll.Rng.create 11 in
        let witnessed = ref false in
        for _ = 1 to 40 do
          let n = 4 + Scoll.Rng.int rng 6 in
          let m = Scoll.Rng.int rng ((n * (n - 1) / 2) + 1) in
          let g = Sgraph.Gen.erdos_renyi_gnm rng ~n ~m in
          let greedy = H.all g cheat in
          let exact = H.all g honest in
          (* soundness always: greedy results are a subset of the truth *)
          List.iter
            (fun c ->
              check bool "greedy subset of exact" true
                (List.exists (NS.equal c) exact))
            greedy;
          if List.length greedy < List.length exact then witnessed := true
        done;
        check bool "incompleteness witnessed" true !witnessed);
  ]

let prop_tests =
  let gen_params =
    let open QCheck2.Gen in
    int_range 2 8 >>= fun n ->
    int_range 0 (n * (n - 1) / 2) >>= fun m ->
    int_range 0 1_000_000 >>= fun seed -> return (n, m, seed)
  in
  let prop name which =
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:60 ~name
         ~print:(fun (n, m, seed) -> Printf.sprintf "n=%d m=%d seed=%d" n m seed)
         gen_params
         (fun (n, m, seed) ->
           agree (Sgraph.Gen.erdos_renyi_gnm (Scoll.Rng.create seed) ~n ~m) which))
  in
  [
    prop "generic engine exact for cliques" H.clique;
    prop "generic engine exact for 2-cliques" (H.s_clique ~s:2);
    prop "generic engine exact for 3-cliques" (H.s_clique ~s:3);
    prop "generic engine exact for 2-plexes" (H.k_plex ~k:2);
    prop "generic engine exact for 3-plexes" (H.k_plex ~k:3);
  ]

let suites = [ ("hereditary", unit_tests); ("hereditary_properties", prop_tests) ]
