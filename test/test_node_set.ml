(* Node_set: unit tests plus model-based property tests against
   Set.Make(Int) — the set algebra here underpins every algorithm. *)

module NS = Sgraph.Node_set
module IS = Set.Make (Int)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let ns = Test_support.ns

let of_l = NS.of_list

let unit_tests =
  [
    Alcotest.test_case "of_list sorts and dedups" `Quick (fun () ->
        check ns "sorted" (of_l [ 1; 2; 3 ]) (of_l [ 3; 1; 2; 3; 1 ]));
    Alcotest.test_case "empty" `Quick (fun () ->
        check bool "is_empty" true (NS.is_empty NS.empty);
        check int "cardinal" 0 (NS.cardinal NS.empty));
    Alcotest.test_case "singleton" `Quick (fun () ->
        check ns "one element" (of_l [ 7 ]) (NS.singleton 7);
        check bool "mem" true (NS.mem 7 (NS.singleton 7)));
    Alcotest.test_case "mem binary search" `Quick (fun () ->
        let s = of_l [ 2; 4; 6; 8; 10 ] in
        List.iter (fun v -> check bool "member" true (NS.mem v s)) [ 2; 4; 6; 8; 10 ];
        List.iter (fun v -> check bool "absent" false (NS.mem v s)) [ 1; 3; 5; 9; 11; 0 ]);
    Alcotest.test_case "add keeps order" `Quick (fun () ->
        check ns "middle" (of_l [ 1; 2; 3 ]) (NS.add 2 (of_l [ 1; 3 ]));
        check ns "front" (of_l [ 0; 1; 3 ]) (NS.add 0 (of_l [ 1; 3 ]));
        check ns "back" (of_l [ 1; 3; 9 ]) (NS.add 9 (of_l [ 1; 3 ])));
    Alcotest.test_case "add existing is identity" `Quick (fun () ->
        let s = of_l [ 1; 2 ] in
        check ns "unchanged" s (NS.add 1 s));
    Alcotest.test_case "remove" `Quick (fun () ->
        check ns "middle" (of_l [ 1; 3 ]) (NS.remove 2 (of_l [ 1; 2; 3 ]));
        check ns "absent" (of_l [ 1; 2 ]) (NS.remove 5 (of_l [ 1; 2 ])));
    Alcotest.test_case "union basic" `Quick (fun () ->
        check ns "overlap" (of_l [ 1; 2; 3; 4 ]) (NS.union (of_l [ 1; 2; 3 ]) (of_l [ 2; 3; 4 ])));
    Alcotest.test_case "inter basic" `Quick (fun () ->
        check ns "overlap" (of_l [ 2; 3 ]) (NS.inter (of_l [ 1; 2; 3 ]) (of_l [ 2; 3; 4 ]));
        check ns "disjoint" NS.empty (NS.inter (of_l [ 1 ]) (of_l [ 2 ])));
    Alcotest.test_case "inter galloping path (size ratio > 16)" `Quick (fun () ->
        let big = NS.range 0 1000 in
        let small = of_l [ -5; 3; 500; 999; 1005 ] in
        check ns "gallop" (of_l [ 3; 500; 999 ]) (NS.inter small big);
        check ns "gallop (swapped)" (of_l [ 3; 500; 999 ]) (NS.inter big small));
    Alcotest.test_case "diff basic" `Quick (fun () ->
        check ns "basic" (of_l [ 1 ]) (NS.diff (of_l [ 1; 2; 3 ]) (of_l [ 2; 3; 4 ])));
    Alcotest.test_case "diff galloping path" `Quick (fun () ->
        let big = NS.range 0 1000 in
        let small = of_l [ 0; 999 ] in
        check int "drop two" 998 (NS.cardinal (NS.diff big small));
        check ns "small minus big" NS.empty (NS.diff small big));
    Alcotest.test_case "subset" `Quick (fun () ->
        check bool "yes" true (NS.subset (of_l [ 1; 3 ]) (of_l [ 1; 2; 3 ]));
        check bool "no" false (NS.subset (of_l [ 1; 4 ]) (of_l [ 1; 2; 3 ]));
        check bool "empty subset" true (NS.subset NS.empty (of_l [ 1 ]));
        check bool "not superset" false (NS.subset (of_l [ 1; 2 ]) (of_l [ 1 ])));
    Alcotest.test_case "disjoint" `Quick (fun () ->
        check bool "yes" true (NS.disjoint (of_l [ 1; 3 ]) (of_l [ 2; 4 ]));
        check bool "no" false (NS.disjoint (of_l [ 1; 3 ]) (of_l [ 3 ]));
        check bool "empty" true (NS.disjoint NS.empty NS.empty));
    Alcotest.test_case "compare is lexicographic" `Quick (fun () ->
        check bool "{1,2} < {1,2,3}" true (NS.compare (of_l [ 1; 2 ]) (of_l [ 1; 2; 3 ]) < 0);
        check bool "{1,4} > {1,2,3}" true (NS.compare (of_l [ 1; 4 ]) (of_l [ 1; 2; 3 ]) > 0);
        check int "equal" 0 (NS.compare (of_l [ 1; 2 ]) (of_l [ 2; 1 ]));
        check bool "empty least" true (NS.compare NS.empty (of_l [ 0 ]) < 0));
    Alcotest.test_case "min/max/nth/choose" `Quick (fun () ->
        let s = of_l [ 5; 1; 9 ] in
        check int "min" 1 (NS.min_elt s);
        check int "max" 9 (NS.max_elt s);
        check int "nth 1" 5 (NS.nth s 1);
        check int "choose deterministic" 1 (NS.choose s));
    Alcotest.test_case "min on empty raises" `Quick (fun () ->
        Alcotest.check_raises "Not_found" Not_found (fun () -> ignore (NS.min_elt NS.empty)));
    Alcotest.test_case "nth out of bounds raises" `Quick (fun () ->
        Alcotest.check_raises "oob" (Invalid_argument "Node_set.nth: out of bounds")
          (fun () -> ignore (NS.nth (of_l [ 1 ]) 1)));
    Alcotest.test_case "iter ascending" `Quick (fun () ->
        let acc = ref [] in
        NS.iter (fun v -> acc := v :: !acc) (of_l [ 3; 1; 2 ]);
        check (Alcotest.list int) "ascending" [ 1; 2; 3 ] (List.rev !acc));
    Alcotest.test_case "fold / for_all / exists / filter" `Quick (fun () ->
        let s = of_l [ 1; 2; 3; 4 ] in
        check int "sum" 10 (NS.fold ( + ) s 0);
        check bool "all positive" true (NS.for_all (fun v -> v > 0) s);
        check bool "exists even" true (NS.exists (fun v -> v mod 2 = 0) s);
        check ns "evens" (of_l [ 2; 4 ]) (NS.filter (fun v -> v mod 2 = 0) s));
    Alcotest.test_case "inter_cardinal and diff_cardinal" `Quick (fun () ->
        let a = of_l [ 1; 2; 3; 4; 5 ] and b = of_l [ 4; 5; 6 ] in
        check int "inter" 2 (NS.inter_cardinal a b);
        check int "diff" 3 (NS.diff_cardinal a b);
        let big = NS.range 0 500 in
        check int "gallop inter" 1 (NS.inter_cardinal (of_l [ 4; 700 ]) big);
        check int "gallop inter swapped" 1 (NS.inter_cardinal big (of_l [ 4; 700 ])));
    Alcotest.test_case "range" `Quick (fun () ->
        check ns "0..3" (of_l [ 0; 1; 2 ]) (NS.range 0 3);
        check ns "empty" NS.empty (NS.range 5 5);
        check ns "reversed empty" NS.empty (NS.range 7 3));
    Alcotest.test_case "to_array is a safe copy" `Quick (fun () ->
        let s = of_l [ 1; 2 ] in
        let arr = NS.to_array s in
        arr.(0) <- 99;
        check ns "unchanged" (of_l [ 1; 2 ]) s);
    Alcotest.test_case "to_string" `Quick (fun () ->
        check Alcotest.string "pretty" "{1, 5, 9}" (NS.to_string (of_l [ 9; 1; 5 ]));
        check Alcotest.string "empty" "{}" (NS.to_string NS.empty));
    Alcotest.test_case "of_sorted_array_unchecked adopts the array" `Quick (fun () ->
        let s = NS.of_sorted_array_unchecked [| 1; 4; 8 |] in
        check int "cardinal" 3 (NS.cardinal s);
        check bool "mem" true (NS.mem 4 s);
        check ns "equal to of_list" (of_l [ 1; 4; 8 ]) s);
    Alcotest.test_case "operations on large sets" `Quick (fun () ->
        let rng = Scoll.Rng.create 55 in
        let a = NS.of_list (List.init 5000 (fun _ -> Scoll.Rng.int rng 20000)) in
        let b = NS.of_list (List.init 5000 (fun _ -> Scoll.Rng.int rng 20000)) in
        check int "inclusion-exclusion" (NS.cardinal (NS.union a b))
          (NS.cardinal a + NS.cardinal b - NS.inter_cardinal a b);
        check bool "diff disjoint from b" true (NS.disjoint (NS.diff a b) b);
        check bool "inter subset of both" true
          (NS.subset (NS.inter a b) a && NS.subset (NS.inter a b) b));
  ]

(* model-based properties against Set.Make(Int) *)

let arb_int_list = QCheck2.Gen.(list_size (int_range 0 40) (int_range 0 60))

let model_property name f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300 ~name
       QCheck2.Gen.(pair arb_int_list arb_int_list)
       f)

let to_model l = IS.of_list l

let prop_tests =
  [
    model_property "union agrees with Set" (fun (a, b) ->
        NS.to_list (NS.union (of_l a) (of_l b)) = IS.elements (IS.union (to_model a) (to_model b)));
    model_property "inter agrees with Set" (fun (a, b) ->
        NS.to_list (NS.inter (of_l a) (of_l b)) = IS.elements (IS.inter (to_model a) (to_model b)));
    model_property "diff agrees with Set" (fun (a, b) ->
        NS.to_list (NS.diff (of_l a) (of_l b)) = IS.elements (IS.diff (to_model a) (to_model b)));
    model_property "subset agrees with Set" (fun (a, b) ->
        NS.subset (of_l a) (of_l b) = IS.subset (to_model a) (to_model b));
    model_property "disjoint agrees with Set" (fun (a, b) ->
        NS.disjoint (of_l a) (of_l b) = IS.disjoint (to_model a) (to_model b));
    model_property "inter_cardinal consistent with inter" (fun (a, b) ->
        NS.inter_cardinal (of_l a) (of_l b) = NS.cardinal (NS.inter (of_l a) (of_l b)));
    model_property "diff_cardinal consistent with diff" (fun (a, b) ->
        NS.diff_cardinal (of_l a) (of_l b) = NS.cardinal (NS.diff (of_l a) (of_l b)));
    model_property "compare is a total order consistent with equal" (fun (a, b) ->
        let sa = of_l a and sb = of_l b in
        (NS.compare sa sb = 0) = NS.equal sa sb
        && NS.compare sa sb = -NS.compare sb sa);
    model_property "add/remove roundtrip" (fun (a, b) ->
        let s = of_l a in
        match b with
        | [] -> true
        | v :: _ -> NS.equal (NS.remove v (NS.add v s)) (NS.remove v s));
  ]

let suites = [ ("node_set", unit_tests); ("node_set_properties", prop_tests) ]
