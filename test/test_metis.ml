(* METIS adjacency format I/O. *)

module G = Sgraph.Graph
module M = Sgraph.Metis_io

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let tests =
  [
    Alcotest.test_case "parse the METIS manual's style of file" `Quick (fun () ->
        (* triangle plus a pendant: 4 nodes, 4 edges *)
        let g = M.parse_string "% a comment\n4 4\n2 3\n1 3\n1 2 4\n3\n" in
        check int "n" 4 (G.n g);
        check int "m" 4 (G.m g);
        check bool "edge 0-1" true (G.mem_edge g 0 1);
        check bool "edge 2-3" true (G.mem_edge g 2 3);
        check bool "no 0-3" false (G.mem_edge g 0 3));
    Alcotest.test_case "isolated node = blank line" `Quick (fun () ->
        let g = M.parse_string "3 1\n2\n1\n\n" in
        check int "n" 3 (G.n g);
        check int "deg node 2" 0 (G.degree g 2));
    Alcotest.test_case "explicit fmt field 0 accepted" `Quick (fun () ->
        check int "m" 1 (G.m (M.parse_string "2 1 0\n2\n1\n")));
    Alcotest.test_case "weighted fmt rejected" `Quick (fun () ->
        match M.parse_string "2 1 011\n2\n1\n" with
        | exception Sgraph.Io_error.Parse_error { msg; _ } ->
            check bool "mentions format" true (Astring_contains.contains msg "format")
        | _ -> Alcotest.fail "expected Parse_error");
    Alcotest.test_case "asymmetric adjacency rejected" `Quick (fun () ->
        match M.parse_string "2 1\n2\n\n" with
        | exception Sgraph.Io_error.Parse_error { msg; _ } ->
            check bool "mentions symmetry" true (Astring_contains.contains msg "symmetric")
        | _ -> Alcotest.fail "expected Parse_error");
    Alcotest.test_case "wrong edge count rejected" `Quick (fun () ->
        match M.parse_string "2 5\n2\n1\n" with
        | exception Sgraph.Io_error.Parse_error { msg; _ } ->
            check bool "mentions count" true (Astring_contains.contains msg "edges")
        | _ -> Alcotest.fail "expected Parse_error");
    Alcotest.test_case "out-of-range neighbor rejected with line number" `Quick
      (fun () ->
        match M.parse_string "2 1\n3\n1\n" with
        | exception Sgraph.Io_error.Parse_error { line; _ } ->
            check int "line 2" 2 line
        | _ -> Alcotest.fail "expected Parse_error");
    Alcotest.test_case "missing node lines rejected" `Quick (fun () ->
        match M.parse_string "3 1\n2\n1\n" with
        | exception Sgraph.Io_error.Parse_error _ -> ()
        | _ -> Alcotest.fail "expected Parse_error");
    Alcotest.test_case "round trip through to_string" `Quick (fun () ->
        let g = Sgraph.Gen.erdos_renyi (Scoll.Rng.create 7) ~n:40 ~avg_degree:5. in
        check bool "equal" true (G.equal g (M.parse_string (M.to_string g))));
    Alcotest.test_case "file round trip" `Quick (fun () ->
        let g = Sgraph.Gen.petersen () in
        let path = Filename.temp_file "scliques" ".graph" in
        M.save g path;
        let g' = M.load path in
        Sys.remove path;
        check bool "equal" true (G.equal g g'));
    Alcotest.test_case "cross-format agreement with the edge list" `Quick (fun () ->
        let g = Sgraph.Gen.grid 4 5 in
        let via_metis = M.parse_string (M.to_string g) in
        let via_edges = Sgraph.Edge_list_io.parse_string (Sgraph.Edge_list_io.to_string g) in
        check bool "all equal" true (G.equal via_metis via_edges));
  ]

let suites = [ ("metis_io", tests) ]
