(* scliques-daemon — long-running s-clique query server.

   scliques-daemon --socket /tmp/sclq.sock --graph web=web.sgr
   scliques-daemon --tcp 127.0.0.1:7199 --graph a=a.edges --graph b=b.sgr

   Preloads every --graph, serves SCLQRPC1 queries until SIGTERM/SIGINT,
   then drains: in-flight queries finish streaming, the socket file is
   removed, and one drain line goes to stdout. *)

open Cmdliner
module Server = Scliques_daemon.Server

let die fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "scliques-daemon: error: %s\n%!" msg;
      Stdlib.exit 1)
    fmt

(* .sgr loads as a CRC-checked binary snapshot, anything else as an edge
   list; raises like the loaders do — Reload reuses this thunk *)
let load_graph_file file =
  if Filename.check_suffix file ".sgr" then Sgraph.Snapshot.load file
  else Sgraph.Edge_list_io.load file

(* NAME=FILE *)
let load_graph_spec spec =
  match String.index_opt spec '=' with
  | None -> die "--graph %S: expected NAME=FILE" spec
  | Some i ->
      let name = String.sub spec 0 i in
      let file = String.sub spec (i + 1) (String.length spec - i - 1) in
      if String.length name = 0 then die "--graph %S: empty name" spec;
      let g =
        match load_graph_file file with
        | g -> g
        | exception Sgraph.Io_error.Parse_error { file; line; msg } ->
            die "%s" (Sgraph.Io_error.to_string ~file ~line msg)
        | exception Sys_error msg -> die "%s" msg
      in
      (name, g, file)

(* SITE:N — arm the registry's SITE to fail on its N-th hit *)
let arm_spec fault spec =
  match String.rindex_opt spec ':' with
  | None -> die "--inject %S: expected SITE:N" spec
  | Some i -> (
      let site = String.sub spec 0 i in
      let n = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt n with
      | Some n when n >= 1 -> Scoll.Fault.arm_nth fault ~site ~n
      | _ -> die "--inject %S: N must be a positive integer" spec)

let parse_tcp spec =
  match String.rindex_opt spec ':' with
  | None -> die "--tcp %S: expected HOST:PORT" spec
  | Some i -> (
      let host = String.sub spec 0 i in
      let port = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt port with
      | Some p when p >= 0 && p <= 0xFFFF -> Server.Tcp (host, p)
      | _ -> die "--tcp %S: bad port" spec)

let stop_requested = Atomic.make false
let hup_requested = Atomic.make false

let serve socket tcp graphs workers max_queue par_workers cache_capacity
    state_dir compact_threshold qps query_burst mutate_bps mutate_burst
    injects =
  let addr =
    match (socket, tcp) with
    | Some _, Some _ -> die "--socket and --tcp are mutually exclusive"
    | Some path, None -> Server.Unix_socket path
    | None, Some spec -> parse_tcp spec
    | None, None -> die "one of --socket PATH or --tcp HOST:PORT is required"
  in
  if graphs = [] then die "at least one --graph NAME=FILE is required";
  let specs = List.map load_graph_spec graphs in
  let graphs = List.map (fun (name, g, _) -> (name, g)) specs in
  let sources =
    List.map (fun (name, _, file) -> (name, fun () -> load_graph_file file)) specs
  in
  let quota =
    if qps = None && query_burst = None && mutate_bps = None
       && mutate_burst = None
    then None
    else
      Some
        {
          Scliques_daemon.Quota.queries_per_sec =
            Option.value qps ~default:infinity;
          query_burst = Option.value query_burst ~default:8;
          mutate_bytes_per_sec = Option.value mutate_bps ~default:infinity;
          mutate_burst = Option.value mutate_burst ~default:(1 lsl 20);
        }
  in
  (match state_dir with
  | None -> ()
  | Some dir when Sys.file_exists dir -> ()
  | Some dir -> (
      try Unix.mkdir dir 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()));
  let fault =
    if injects = [] then Scoll.Fault.none
    else begin
      let f = Scoll.Fault.create () in
      List.iter (arm_spec f) injects;
      f
    end
  in
  let srv =
    match
      Server.create ~workers ~max_queue ~par_workers ~cache_capacity
        ~compact_threshold ?quota ?state_dir ~sources ~fault ~graphs addr
    with
    | srv -> srv
    | exception Invalid_argument msg -> die "%s" msg
    | exception Sgraph.Io_error.Parse_error { file; line; msg } ->
        die "%s" (Sgraph.Io_error.to_string ~file ~line msg)
    | exception Unix.Unix_error (e, fn, arg) ->
        die "%s: %s (%s)" fn (Unix.error_message e) arg
  in
  let where =
    match addr with
    | Server.Unix_socket path -> path
    | Server.Tcp (host, _) -> Printf.sprintf "%s:%d" host (Server.port srv)
  in
  Printf.printf "scliques-daemon: serving %d graph%s on %s\n%!"
    (List.length graphs)
    (if List.length graphs = 1 then "" else "s")
    where;
  let request_stop _ = Atomic.set stop_requested true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
  Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
  (* the handler only raises a flag; the swap itself runs on this thread *)
  Sys.set_signal Sys.sighup
    (Sys.Signal_handle (fun _ -> Atomic.set hup_requested true));
  while not (Atomic.get stop_requested) do
    if Atomic.compare_and_set hup_requested true false then
      List.iter
        (fun (name, result) ->
          match result with
          | Ok (epoch, n, m) ->
              Printf.printf
                "scliques-daemon: reloaded %s: n=%d m=%d epoch=%d\n%!" name n
                m epoch
          | Error msg ->
              Printf.eprintf
                "scliques-daemon: reload of %s failed: %s (still serving the \
                 previous graph)\n%!"
                name msg)
        (Server.reload_all srv);
    Thread.delay 0.1
  done;
  Server.stop ~drain:true srv;
  Printf.printf "scliques-daemon: drained, bye\n%!";
  0

let socket_arg =
  let doc = "Serve on a Unix-domain socket at $(docv)." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let tcp_arg =
  let doc = "Serve on TCP $(docv) (port 0 picks a free one)." in
  Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT" ~doc)

let graphs_arg =
  let doc =
    "Preload a graph as $(docv). A $(b,.sgr) file loads as a CRC-checked \
     binary snapshot, anything else as an edge list. Repeatable."
  in
  Arg.(value & opt_all string [] & info [ "graph" ] ~docv:"NAME=FILE" ~doc)

let workers_arg =
  let doc = "Worker domains executing queries." in
  Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc)

let max_queue_arg =
  let doc = "Admitted-but-waiting query bound; past it, queries get Busy." in
  Arg.(value & opt int 16 & info [ "max-queue" ] ~docv:"N" ~doc)

let par_workers_arg =
  let doc = "Extra domains a parallel-engine query may use." in
  Arg.(value & opt int 1 & info [ "par-workers" ] ~docv:"N" ~doc)

let cache_capacity_arg =
  let doc = "Entry capacity of each shared N^s ball cache." in
  Arg.(value & opt int 65536 & info [ "cache-capacity" ] ~docv:"N" ~doc)

let state_dir_arg =
  let doc =
    "Make wire mutations durable: per graph, keep a base snapshot plus an \
     fsynced SGRDIFF1 journal in $(docv) (created if missing), and on \
     restart resume from them — a mutation is acked only after its journal \
     record reached disk. Graph names must be plain file-name stems."
  in
  Arg.(value & opt (some string) None & info [ "state-dir" ] ~docv:"DIR" ~doc)

let compact_threshold_arg =
  let doc =
    "Fold the journal into a fresh base snapshot once a graph accumulated \
     $(docv) overlay edits."
  in
  Arg.(value & opt int 1024 & info [ "compact-threshold" ] ~docv:"N" ~doc)

let qps_arg =
  let doc = "Per-client quota: queries admitted per second (token bucket)." in
  Arg.(value & opt (some float) None & info [ "quota-qps" ] ~docv:"RATE" ~doc)

let query_burst_arg =
  let doc = "Per-client quota: query bucket ceiling (default 8)." in
  Arg.(value & opt (some int) None & info [ "quota-query-burst" ] ~docv:"N" ~doc)

let mutate_bps_arg =
  let doc = "Per-client quota: mutation payload bytes admitted per second." in
  Arg.(
    value & opt (some float) None & info [ "quota-mutate-bps" ] ~docv:"RATE" ~doc)

let mutate_burst_arg =
  let doc = "Per-client quota: mutation-byte bucket ceiling (default 1 MiB)." in
  Arg.(
    value & opt (some int) None & info [ "quota-mutate-burst" ] ~docv:"N" ~doc)

let inject_arg =
  let doc =
    "Arm a deterministic fault: $(docv) makes the daemon's named \
     injection site ($(b,daemon.accept), $(b,daemon.write), \
     $(b,daemon.flush), $(b,daemon.mutate.journal), \
     $(b,daemon.mutate.flush), $(b,daemon.reload)) fail on its N-th hit. \
     Repeatable; for drills."
  in
  Arg.(value & opt_all string [] & info [ "inject" ] ~docv:"SITE:N" ~doc)

let cmd =
  let doc = "serve s-clique queries over a socket" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Preloads the given graphs and answers SCLQRPC1 queries — \
         streaming one result frame per maximal connected s-clique — \
         until SIGTERM or SIGINT, then drains gracefully. Queries \
         against the same graph and s share a warm N^s ball cache. \
         Wire-level Mutate requests apply SGRDIFF1 edit scripts live \
         (journaled durably under $(b,--state-dir)); in-flight queries \
         always finish on the graph epoch they were admitted under. \
         SIGHUP hot-reloads every graph from its source file without \
         dropping connections.";
    ]
  in
  Cmd.v
    (Cmd.info "scliques-daemon" ~version:"%%VERSION%%" ~doc ~man)
    Term.(
      const serve $ socket_arg $ tcp_arg $ graphs_arg $ workers_arg
      $ max_queue_arg $ par_workers_arg $ cache_capacity_arg $ state_dir_arg
      $ compact_threshold_arg $ qps_arg $ query_burst_arg $ mutate_bps_arg
      $ mutate_burst_arg $ inject_arg)

let () = Stdlib.exit (Cmd.eval' cmd)
