(* scliques — command-line front-end.

   scliques gen --family sf --nodes 1000 --avg-degree 10 -o g.edges
   scliques enum g.edges -s 2 --algorithm cs2pf --limit 100
   scliques stats g.edges
   scliques power g.edges -s 2 -o g2.edges *)

open Cmdliner

module E = Scliques_core.Enumerate
module NS = Sgraph.Node_set

(* ---------- shared arguments ---------- *)

let graph_file_arg =
  let doc = "Input graph file." in
  Arg.(required & pos 0 (some non_dir_file) None & info [] ~docv:"GRAPH" ~doc)

let format_arg =
  let doc =
    "Graph file format: $(b,edgelist) (\"u v\" per line, # comments), \
     $(b,metis) (METIS adjacency format) or $(b,bin) (CRC-checked binary \
     snapshot written by $(b,convert --to bin))."
  in
  Arg.(
    value
    & opt (enum [ ("edgelist", `Edgelist); ("metis", `Metis); ("bin", `Bin) ]) `Edgelist
    & info [ "format" ] ~docv:"FMT" ~doc)

(* the one-line-diagnostic contract of Io_error: a malformed input exits 1
   with "file:line: msg", never cmdliner's uncaught-exception report *)
let or_parse_error f =
  match f () with
  | v -> v
  | exception Sgraph.Io_error.Parse_error { file; line; msg } ->
      Printf.eprintf "scliques: error: %s\n%!" (Sgraph.Io_error.to_string ~file ~line msg);
      Stdlib.exit 1
  | exception Sys_error msg ->
      Printf.eprintf "scliques: error: %s\n%!" msg;
      Stdlib.exit 1

let load_graph format path =
  or_parse_error (fun () ->
      match format with
      | `Edgelist -> Sgraph.Edge_list_io.load path
      | `Metis -> Sgraph.Metis_io.load path
      | `Bin -> Sgraph.Snapshot.load path)

let s_arg =
  let doc = "The distance bound $(i,s) of the s-clique definition." in
  Arg.(value & opt int 2 & info [ "s" ] ~docv:"S" ~doc)

let seed_arg =
  let doc = "Random seed (runs are deterministic for a fixed seed)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let output_arg =
  let doc = "Output file (defaults to stdout)." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let write_graph g = function
  | Some path ->
      Sgraph.Edge_list_io.save g path;
      Printf.printf "wrote %s: %s\n" path (Sgraph.Metrics.summary g)
  | None -> print_string (Sgraph.Edge_list_io.to_string g)

(* ---------- gen ---------- *)

let gen_cmd =
  let family_arg =
    let families =
      [ ("er", `Er); ("sf", `Sf); ("ws", `Ws); ("community", `Community);
        ("proxy", `Proxy); ("gadget", `Gadget); ("path", `Path) ]
    in
    let doc =
      "Graph family: $(b,er) (Erdős–Rényi), $(b,sf) (scale-free preferential \
       attachment), $(b,ws) (Watts–Strogatz), $(b,community) (planted \
       partition), $(b,proxy) (social-network proxy), $(b,gadget) (the \
       paper's exponential-output gadget; --nodes is its parameter n), \
       $(b,path) (the deterministic path 0-1-...-(n-1))."
    in
    Arg.(value & opt (enum families) `Er & info [ "family" ] ~docv:"FAMILY" ~doc)
  in
  let nodes_arg =
    Arg.(value & opt int 1000 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of nodes.")
  in
  let degree_arg =
    Arg.(
      value & opt float 10. & info [ "avg-degree" ] ~docv:"D" ~doc:"Average degree.")
  in
  let communities_arg =
    Arg.(
      value & opt int 20
      & info [ "communities" ] ~docv:"C" ~doc:"Community count (community/proxy).")
  in
  let run family n avg_degree communities seed output =
    let rng = Scoll.Rng.create seed in
    let g =
      match family with
      | `Er -> Sgraph.Gen.erdos_renyi rng ~n ~avg_degree
      | `Sf ->
          Sgraph.Gen.barabasi_albert rng ~n
            ~m_attach:(max 1 (int_of_float (avg_degree /. 2.)))
      | `Ws ->
          Sgraph.Gen.watts_strogatz rng ~n
            ~k:(max 1 (int_of_float (avg_degree /. 2.)))
            ~beta:0.1
      | `Community ->
          let per = float_of_int n /. float_of_int communities in
          let p_in = Float.min 1. (avg_degree /. per) in
          Sgraph.Gen.planted_partition rng ~n ~communities ~p_in ~p_out:0.001
      | `Proxy -> Sgraph.Gen.social_proxy rng ~n ~avg_degree ~communities
      | `Gadget -> Sgraph.Gen.exponential_gadget n
      | `Path -> Sgraph.Gen.path n
    in
    write_graph g output
  in
  let term =
    Term.(
      const run $ family_arg $ nodes_arg $ degree_arg $ communities_arg $ seed_arg
      $ output_arg)
  in
  Cmd.v (Cmd.info "gen" ~doc:"Generate a synthetic graph.") term

(* ---------- budgeted / checkpointed enumeration ---------- *)

module Budget = Scliques_core.Budget
module Ckpt = Scliques_core.Checkpoint
module Stream = Scliques_core.Result_io.Stream
module Ridx = Scliques_core.Result_io.Index
module Nh = Scliques_core.Neighborhood

let print_set c =
  print_endline (String.concat " " (List.map string_of_int (NS.to_list c)))

(* The [--deadline]/[--max-results]/[--checkpoint]/[--resume] path: stream
   results as they are emitted, and on truncation (exit 3) leave behind a
   checkpoint a later run can [--resume]. Results are mirrored into the
   crash-safe record stream [CKPT.results] so a crash between emissions
   loses at most the unflushed tail, which the next run's clean-prefix
   truncation cuts off. *)
let budgeted_run g ~s ~algorithm ~workers ~min_size ~deadline ~max_results
    ~ckpt_path ~resume_path ~sigint_after =
  let alg_label =
    match algorithm with `Alg a -> E.name a | `Par -> "Parallel"
  in
  let family =
    match algorithm with `Alg a -> E.checkpoint_family a | `Par -> "roots"
  in
  let n = Sgraph.Graph.n g and m = Sgraph.Graph.m g in
  (* checkpoints land in --checkpoint, defaulting to the file resumed from *)
  let ckpt_out = if ckpt_path <> None then ckpt_path else resume_path in
  let prior =
    match resume_path with
    | None -> None
    | Some p ->
        let c = Ckpt.load p in
        Ckpt.check_compat c ~s ~n ~m ~min_size;
        if Ckpt.family c.Ckpt.state <> family then
          failwith
            (Printf.sprintf
               "checkpoint %s holds a %S state; algorithm %s needs %S" p
               (Ckpt.family c.Ckpt.state) alg_label family);
        Some c
  in
  let budget =
    (* with the SIGINT self-test hook armed, poll every iteration so the
       pending signal is observed promptly *)
    Budget.create ?deadline_s:deadline ?max_results
      ?poll_every:(if sigint_after = None then None else Some 1)
      ()
  in
  (match prior with
  | Some c -> Budget.preload_results budget c.Ckpt.emitted
  | None -> ());
  Sys.set_signal Sys.sigint
    (Sys.Signal_handle (fun _ -> Budget.request_cancel budget));
  let stream =
    match ckpt_out with
    | None -> None
    | Some p ->
        let path = p ^ ".results" in
        if resume_path <> None && Sys.file_exists path then begin
          let _, clean_len, _ = Stream.read_records path in
          Some (Stream.open_append path ~clean_len)
        end
        else Some (Stream.open_writer path)
  in
  let to_kill = ref (match sigint_after with Some k -> k | None -> -1) in
  let emit c =
    print_set c;
    (match stream with Some w -> Stream.write_set w c | None -> ());
    if !to_kill > 0 then begin
      decr to_kill;
      if !to_kill = 0 then Unix.kill (Unix.getpid ()) Sys.sigint
    end
  in
  let finish outcome state_thunk =
    (match stream with Some w -> Stream.close w | None -> ());
    match outcome with
    | Budget.Complete ->
        (* a whole root-decomposed run gets the SCLQIDX1 sidecar: per-root
           fingerprints plus byte extents, so a later [refresh] can skip
           unchanged branches and splice the stream without decoding it *)
        (match ckpt_out with
        | Some p when String.equal family "roots" ->
            let path = p ^ ".results" in
            let idx =
              Ridx.build ~s ~n
                ~fingerprint:(Nh.root_fingerprint ~s g)
                path
            in
            Ridx.save idx (Ridx.path_for path)
        | _ -> ());
        (* the run is whole: a leftover checkpoint would make a later
           --resume skip work that belongs in a fresh run *)
        (match ckpt_out with
        | Some p when Sys.file_exists p -> Sys.remove p
        | _ -> ());
        0
    | Budget.Truncated reason -> (
        match ckpt_out with
        | Some p ->
            Ckpt.save
              {
                Ckpt.algorithm = alg_label;
                s;
                n;
                m;
                min_size;
                emitted = Budget.results budget;
                state = state_thunk ();
              }
              p;
            Printf.eprintf
              "scliques: truncated (%s); checkpoint written to %s\n%!"
              (Budget.reason_to_string reason)
              p;
            3
        | None ->
            Printf.eprintf
              "scliques: truncated (%s); no --checkpoint, progress lost\n%!"
              (Budget.reason_to_string reason);
            3)
  in
  match algorithm with
  | `Alg alg ->
      let resume = Option.map (fun c -> c.Ckpt.state) prior in
      let report = E.run ~min_size ~budget ?resume alg g ~s emit in
      finish report.E.outcome (fun () -> Option.get report.E.resumable)
  | `Par ->
      let skip_roots =
        match prior with
        | Some { Ckpt.state = Ckpt.Roots { retired }; _ } -> retired
        | _ -> []
      in
      let on_root_retired _root results =
        List.iter emit results;
        match stream with Some w -> Stream.flush w | None -> ()
      in
      let (_ : NS.t list), outcome, retired =
        Scliques_core.Parallel.enumerate_budgeted ?workers ~min_size ~budget
          ~skip_roots ~on_root_retired g ~s
      in
      finish outcome (fun () ->
          Ckpt.Roots { retired = List.sort Int.compare (skip_roots @ retired) })

(* ---------- enum ---------- *)

let enum_cmd =
  let algorithm_arg =
    let parse s =
      match String.lowercase_ascii s with
      | "par" | "parallel" -> Ok `Par
      | _ -> (
          match E.of_name s with
          | Some alg -> Ok (`Alg alg)
          | None -> Error (`Msg (Printf.sprintf "unknown algorithm %S" s)))
    in
    let print fmt = function
      | `Par -> Format.pp_print_string fmt "par"
      | `Alg alg -> Format.pp_print_string fmt (E.name alg)
    in
    let doc =
      "Algorithm: $(b,pd) (PolyDelayEnum), $(b,cs1), $(b,cs2), $(b,cs2f), \
       $(b,cs2p), $(b,cs2pf) (Bron–Kerbosch adaptations; P = pivoting, F = \
       feasibility check), $(b,brute) (oracle, tiny graphs only), or $(b,par) \
       (work-stealing parallel CSCliques2P across domains; output is \
       canonicalized ascending, and $(b,--limit) truncates it after the full \
       run rather than stopping early)."
    in
    Arg.(
      value
      & opt (conv (parse, print)) (`Alg E.Cs2_pf)
      & info [ "a"; "algorithm" ] ~docv:"ALG" ~doc)
  in
  let workers_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "workers" ] ~docv:"W"
          ~doc:"Worker domains for $(b,-a par) (default: all cores).")
  in
  let limit_arg =
    Arg.(
      value & opt (some int) None
      & info [ "limit" ] ~docv:"N" ~doc:"Stop after the first $(docv) results.")
  in
  let min_size_arg =
    Arg.(
      value & opt int 0
      & info [ "min-size" ] ~docv:"K"
          ~doc:"Only report maximal connected s-cliques of at least $(docv) nodes.")
  in
  let count_arg =
    Arg.(value & flag & info [ "count" ] ~doc:"Print only the number of results.")
  in
  let stats_arg =
    let doc =
      "Print only run statistics in the given format: $(b,text) (size \
       statistics, one line) or $(b,json) (size statistics plus the \
       observability snapshot — per-result delay quantiles, N^s-cache \
       hit/miss/eviction counters, and the algorithm's search counters)."
    in
    Arg.(
      value
      & opt (some (enum [ ("text", `Text); ("json", `Json) ])) None
      & info [ "stats" ] ~docv:"FMT" ~doc)
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SEC"
          ~doc:
            "Stop after $(docv) wall-clock seconds (monotonic clock). A \
             truncated run exits with code 3 and, with $(b,--checkpoint), \
             leaves a resumable checkpoint.")
  in
  let max_results_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-results" ] ~docv:"N"
          ~doc:
            "Stop once $(docv) results were emitted, counted across \
             $(b,--resume) continuations. Exits with code 3 when the cap \
             fires.")
  in
  let checkpoint_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "On truncation, write a resumable checkpoint to $(docv) \
             (atomically). Results are also streamed crash-safely to \
             $(docv).results as they are found. A run that completes \
             removes $(docv).")
  in
  let resume_arg =
    Arg.(
      value
      & opt (some non_dir_file) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Resume from a checkpoint written by an earlier truncated run \
             on the $(i,same) graph with the same $(b,-s)/$(b,--min-size); \
             only results not already streamed are produced. Further \
             checkpoints go to $(docv) unless $(b,--checkpoint) says \
             otherwise.")
  in
  let sigint_after_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "sigint-after" ] ~docv:"N"
          ~doc:
            "Testing hook: raise SIGINT in-process after $(docv) results, \
             exercising the interrupt-handling path deterministically.")
  in
  let run file format s algorithm workers limit min_size count_only stats_fmt
      deadline max_results ckpt resume sigint_after =
    let budgeted =
      deadline <> None || max_results <> None || ckpt <> None || resume <> None
      || sigint_after <> None
    in
    if s < 1 then `Error (false, "s must be >= 1")
    else if budgeted && (limit <> None || count_only || stats_fmt <> None) then
      `Error
        ( false,
          "--deadline/--max-results/--checkpoint/--resume/--sigint-after \
           cannot be combined with --limit, --count or --stats" )
    else if budgeted then begin
      (* exit codes per the budget protocol: 0 complete, 3 truncated,
         1 error (bad checkpoint, unreadable graph, ...) *)
      match
        let g = load_graph format file in
        budgeted_run g ~s ~algorithm ~workers ~min_size ~deadline ~max_results
          ~ckpt_path:ckpt ~resume_path:resume ~sigint_after
      with
      | code -> Stdlib.exit code
      | exception Failure msg ->
          Printf.eprintf "scliques: error: %s\n%!" msg;
          Stdlib.exit 1
      | exception Invalid_argument msg ->
          Printf.eprintf "scliques: error: %s\n%!" msg;
          Stdlib.exit 1
      | exception Sys_error msg ->
          Printf.eprintf "scliques: error: %s\n%!" msg;
          Stdlib.exit 1
      | exception Sgraph.Io_error.Parse_error { file; line; msg } ->
          Printf.eprintf "scliques: error: %s:%d: %s\n%!" file line msg;
          Stdlib.exit 1
    end
    else begin
      let g = load_graph format file in
      (* observe only when the observability output was asked for, so the
         default enumeration path stays uninstrumented *)
      let obs =
        match stats_fmt with Some `Json -> Some (Scliques_obs.Obs.create ()) | _ -> None
      in
      let results =
        match algorithm with
        | `Alg alg -> (
            match limit with
            | Some n -> E.first_n ~min_size ?obs alg g ~s n
            | None -> E.all_results ~min_size ?obs alg g ~s)
        | `Par ->
            let all = Scliques_core.Parallel.enumerate ?workers ~min_size ?obs g ~s in
            (match limit with
            | Some n -> List.filteri (fun i _ -> i < n) all
            | None -> all)
      in
      if count_only then Printf.printf "%d\n" (List.length results)
      else begin
        match stats_fmt with
        | Some `Text ->
            Format.printf "%a@." Scliques_core.Stats.pp
              (Scliques_core.Stats.of_results results)
        | Some `Json ->
            let stats = Scliques_core.Stats.of_results results in
            let open Scliques_obs in
            let obs_fields =
              match obs with
              | Some o -> (
                  match Obs.snapshot_json o with Sink.Obj fields -> fields | _ -> [])
              | None -> []
            in
            let json =
              Sink.Obj
                ([
                   ( "algorithm",
                     Sink.String
                       (match algorithm with
                       | `Alg alg -> E.name alg
                       | `Par -> "Parallel") );
                   ("s", Sink.Int s);
                   ( "results",
                     Sink.Obj
                       [
                         ("count", Sink.Int stats.Scliques_core.Stats.count);
                         ("min_size", Sink.Int stats.Scliques_core.Stats.min_size);
                         ("avg_size", Sink.Float stats.Scliques_core.Stats.avg_size);
                         ("max_size", Sink.Int stats.Scliques_core.Stats.max_size);
                         ("total_nodes", Sink.Int stats.Scliques_core.Stats.total_nodes);
                       ] );
                 ]
                @ obs_fields)
            in
            print_endline (Sink.to_string json)
        | None -> List.iter print_set results
      end;
      `Ok ()
    end
  in
  let term =
    Term.(
      ret
        (const run $ graph_file_arg $ format_arg $ s_arg $ algorithm_arg
       $ workers_arg $ limit_arg $ min_size_arg $ count_arg $ stats_arg
       $ deadline_arg $ max_results_arg $ checkpoint_arg $ resume_arg
       $ sigint_after_arg))
  in
  Cmd.v
    (Cmd.info "enum"
       ~doc:
         "Enumerate all maximal connected s-cliques of a graph (one per line, \
          space-separated node ids). With $(b,--deadline), \
          $(b,--max-results), $(b,--checkpoint) or $(b,--resume) the run is \
          budgeted: exit code 0 means the output is complete, 3 means it was \
          truncated (resumable via the checkpoint), 1 means an error.")
    term

(* ---------- stats ---------- *)

let stats_cmd =
  let run file format =
    let g = load_graph format file in
    print_endline (Sgraph.Metrics.summary g);
    Printf.printf "components=%d degeneracy=%d approx_diameter=%d clustering=%.4f\n"
      (Sgraph.Components.count g)
      (Sgraph.Degeneracy.degeneracy g)
      (Sgraph.Metrics.approx_diameter g)
      (Sgraph.Metrics.global_clustering g)
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Print structural statistics of a graph.")
    Term.(const run $ graph_file_arg $ format_arg)

(* ---------- power ---------- *)

let power_cmd =
  let run file format s output =
    if s < 1 then `Error (false, "s must be >= 1")
    else begin
      let g = load_graph format file in
      write_graph (Sgraph.Power.power g ~s) output;
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "power"
       ~doc:
         "Write the power graph G^s (edges between nodes at distance at most s; \
          Remark 1 of the paper).")
    Term.(ret (const run $ graph_file_arg $ format_arg $ s_arg $ output_arg))

(* ---------- verify ---------- *)

let verify_cmd =
  let results_arg =
    let doc = "Results file: one node set per line (the output of $(b,enum))." in
    Arg.(required & pos 1 (some non_dir_file) None & info [] ~docv:"RESULTS" ~doc)
  in
  let complete_arg =
    Arg.(
      value & flag
      & info [ "complete" ]
          ~doc:
            "Additionally check completeness by re-enumerating and comparing \
             counts (may be expensive).")
  in
  let run file format results_file s complete =
    if s < 1 then `Error (false, "s must be >= 1")
    else begin
      let g = load_graph format file in
      let results = or_parse_error (fun () -> Scliques_core.Result_io.load results_file) in
      match Scliques_core.Verify.certify g ~s results with
      | Error msg -> `Error (false, "certification failed: " ^ msg)
      | Ok () ->
          if complete then begin
            let expected = E.count E.Cs2_pf g ~s in
            if expected <> List.length results then
              `Error
                ( false,
                  Printf.sprintf "incomplete: file has %d sets, graph has %d"
                    (List.length results) expected )
            else begin
              Printf.printf "OK: %d sets, all maximal connected %d-cliques, complete\n"
                (List.length results) s;
              `Ok ()
            end
          end
          else begin
            Printf.printf
              "OK: %d sets, all distinct maximal connected %d-cliques\n"
              (List.length results) s;
            `Ok ()
          end
    end
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Certify that a results file contains distinct maximal connected \
          s-cliques of the graph.")
    Term.(
      ret (const run $ graph_file_arg $ format_arg $ results_arg $ s_arg $ complete_arg))

(* ---------- convert ---------- *)

let convert_cmd =
  let to_arg =
    let doc =
      "Output format: $(b,edgelist), $(b,metis), $(b,dot) or $(b,bin) \
       (CRC-checked binary snapshot; requires $(b,-o))."
    in
    Arg.(
      value
      & opt
          (enum
             [ ("edgelist", `Edgelist); ("metis", `Metis); ("dot", `Dot);
               ("bin", `Bin) ])
          `Metis
      & info [ "to" ] ~docv:"FMT" ~doc)
  in
  let relabel_arg =
    Arg.(
      value & flag
      & info [ "relabel" ]
          ~doc:
            "Renumber nodes into degeneracy order before writing (node 0 is \
             the first peeled). Cache-friendlier CSR rows for the \
             enumeration kernels; the node ids in enumeration output change \
             accordingly.")
  in
  let run file format target relabel output =
    let g = load_graph format file in
    let g =
      if relabel then Sgraph.Graph.relabel g ~order:(Sgraph.Degeneracy.ordering g)
      else g
    in
    match target with
    | `Bin -> (
        match output with
        | None -> `Error (false, "--to bin writes binary output; -o is required")
        | Some path ->
            Sgraph.Snapshot.save g path;
            Printf.printf "wrote %s: %s\n" path (Sgraph.Metrics.summary g);
            `Ok ())
    | (`Edgelist | `Metis | `Dot) as target ->
        let text =
          match target with
          | `Edgelist -> Sgraph.Edge_list_io.to_string g
          | `Metis -> Sgraph.Metis_io.to_string g
          | `Dot -> Sgraph.Dot.to_dot g
        in
        (match output with
        | Some path ->
            let oc = open_out path in
            output_string oc text;
            close_out oc;
            Printf.printf "wrote %s: %s\n" path (Sgraph.Metrics.summary g)
        | None -> print_string text);
        `Ok ()
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:
         "Convert a graph between edge-list, METIS, DOT and binary-snapshot \
          formats, optionally relabeling into degeneracy order.")
    Term.(ret (const run $ graph_file_arg $ format_arg $ to_arg $ relabel_arg $ output_arg))

(* ---------- diff / mutate / refresh (edge churn) ---------- *)

let diff_file_arg =
  let doc = "SGRDIFF1 edit-script file (written by $(b,diff))." in
  Arg.(
    required
    & opt (some non_dir_file) None
    & info [ "diff" ] ~docv:"FILE" ~doc)

let load_diff_for g path =
  or_parse_error (fun () ->
      let header, edits = Sgraph.Diff.load path in
      Sgraph.Diff.check_base ~file:path header g;
      edits)

let apply_diff g path =
  let edits = load_diff_for g path in
  match Sgraph.Diff.apply g edits with
  | g' -> (edits, g')
  | exception Invalid_argument msg ->
      (* strict replay refused an edit: same one-line contract as a parse
         error — the script does not belong to this graph *)
      Printf.eprintf "scliques: error: %s: %s\n%!" path msg;
      Stdlib.exit 1

let diff_cmd =
  let new_file_arg =
    let doc = "The edited graph (same node count, same format)." in
    Arg.(required & pos 1 (some non_dir_file) None & info [] ~docv:"NEW" ~doc)
  in
  let run old_file format new_file output =
    match output with
    | None -> `Error (false, "diff writes binary output; -o is required")
    | Some out ->
        let g0 = load_graph format old_file in
        let g1 = load_graph format new_file in
        if Sgraph.Graph.n g0 <> Sgraph.Graph.n g1 then
          `Error
            ( false,
              Printf.sprintf "node counts differ (%d vs %d); diffs cover edge \
                              churn only"
                (Sgraph.Graph.n g0) (Sgraph.Graph.n g1) )
        else begin
          let edits = Sgraph.Diff.between g0 g1 in
          let inserts =
            List.length
              (List.filter
                 (fun e ->
                   match e with Sgraph.Overlay.Insert _ -> true | _ -> false)
                 edits)
          in
          Sgraph.Diff.save ~base_n:(Sgraph.Graph.n g0) ~base_m:(Sgraph.Graph.m g0)
            edits out;
          Printf.printf "wrote %s: %d edits (%d inserts, %d deletes) against %s\n"
            out (List.length edits) inserts
            (List.length edits - inserts)
            (Sgraph.Metrics.summary g0);
          `Ok ()
        end
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Write the CRC-checked SGRDIFF1 edit script transforming one graph \
          into another (same node set, edge churn only). Replayed strictly by \
          $(b,mutate) and $(b,refresh).")
    Term.(ret (const run $ graph_file_arg $ format_arg $ new_file_arg $ output_arg))

let mutate_cmd =
  let to_arg =
    let doc = "Output format: $(b,edgelist) or $(b,bin) (requires $(b,-o))." in
    Arg.(
      value
      & opt (enum [ ("edgelist", `Edgelist); ("bin", `Bin) ]) `Edgelist
      & info [ "to" ] ~docv:"FMT" ~doc)
  in
  let run file format diff_file target output =
    let g = load_graph format file in
    let edits, g' = apply_diff g diff_file in
    match target with
    | `Bin -> (
        match output with
        | None -> `Error (false, "--to bin writes binary output; -o is required")
        | Some path ->
            Sgraph.Snapshot.save g' path;
            Printf.printf "applied %d edits; wrote %s: %s\n" (List.length edits)
              path
              (Sgraph.Metrics.summary g');
            `Ok ())
    | `Edgelist ->
        (match output with
        | Some path ->
            Sgraph.Edge_list_io.save g' path;
            Printf.printf "applied %d edits; wrote %s: %s\n" (List.length edits)
              path
              (Sgraph.Metrics.summary g')
        | None -> print_string (Sgraph.Edge_list_io.to_string g'));
        `Ok ()
  in
  Cmd.v
    (Cmd.info "mutate"
       ~doc:
         "Apply an SGRDIFF1 edit script to a graph (strict replay: the \
          script's recorded base and every edit must match) and write the \
          mutated graph.")
    Term.(
      ret (const run $ graph_file_arg $ format_arg $ diff_file_arg $ to_arg
         $ output_arg))

let refresh_cmd =
  let results_file_arg =
    let doc =
      "Prior result stream for the unmutated graph: the crash-safe \
       $(b,.results) file written by $(b,enum --checkpoint). Must be \
       complete (exit code 0 of the run that wrote it)."
    in
    Arg.(
      required
      & opt (some non_dir_file) None
      & info [ "results" ] ~docv:"FILE" ~doc)
  in
  let engine_arg =
    let parse s =
      match String.lowercase_ascii s with
      | "par" | "parallel" -> Ok `Par
      | _ -> (
          match E.of_name s with
          | Some alg when String.equal (E.checkpoint_family alg) "roots" ->
              Ok (`Alg alg)
          | Some alg ->
              Error
                (`Msg
                  (Printf.sprintf "%s has no rooted decomposition; refresh \
                                   needs cs1/cs2/cs2f/cs2p/cs2pf or par"
                     (E.name alg)))
          | None -> Error (`Msg (Printf.sprintf "unknown algorithm %S" s)))
    in
    let print fmt = function
      | `Par -> Format.pp_print_string fmt "par"
      | `Alg alg -> Format.pp_print_string fmt (E.name alg)
    in
    let doc =
      "Re-enumeration engine for the affected roots: $(b,cs1), $(b,cs2), \
       $(b,cs2f), $(b,cs2p), $(b,cs2pf), or $(b,par) (work-stealing \
       domains)."
    in
    Arg.(
      value
      & opt (conv (parse, print)) (`Alg E.Cs2_pf)
      & info [ "a"; "algorithm" ] ~docv:"ALG" ~doc)
  in
  let workers_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "workers" ] ~docv:"W"
          ~doc:"Worker domains for $(b,-a par) (default: all cores).")
  in
  let min_size_arg =
    Arg.(
      value & opt int 0
      & info [ "min-size" ] ~docv:"K"
          ~doc:
            "Size bound the prior run used; the refreshed answer keeps the \
             same bound.")
  in
  let run file format diff_file results_file s engine workers min_size output =
    if s < 1 then `Error (false, "s must be >= 1")
    else begin
      let before = load_graph format file in
      let edits = load_diff_for before diff_file in
      let after =
        match Sgraph.Diff.apply before edits with
        | g -> g
        | exception Invalid_argument msg ->
            Printf.eprintf "scliques: error: %s: %s\n%!" diff_file msg;
            Stdlib.exit 1
      in
      let prior, prior_len =
        match
          or_parse_error (fun () -> Stream.read_records results_file)
        with
        | payloads, clean_len, `Clean ->
            (List.map Stream.decode_set payloads, clean_len)
        | _, _, `Torn ->
            (* a torn prior is an incomplete answer: refreshing it would
               bake the missing tail into the "unaffected" half *)
            Printf.eprintf
              "scliques: error: %s: result stream has a torn tail (the prior \
               run did not complete); re-enumerate instead of refreshing\n%!"
              results_file;
            Stdlib.exit 1
      in
      (* streams are root-contiguous but not globally sorted (parallel runs
         commit roots in retirement order); refresh's sorted-input contract
         is established here, once, at load time *)
      let prior = List.sort NS.compare prior in
      let touched = Sgraph.Overlay.touched edits in
      let n = Sgraph.Graph.n before in
      let index =
        let ipath = Ridx.path_for results_file in
        if not (Sys.file_exists ipath) then None
        else
          match Ridx.load ipath with
          | idx
            when idx.Ridx.stream_len = prior_len
                 && idx.Ridx.s = s
                 && Ridx.n idx = n ->
              Some idx
          | _ ->
              Printf.eprintf
                "scliques: refresh: ignoring index %s (stale: wrong graph, \
                 s, or stream length)\n%!"
                ipath;
              None
          | exception Sgraph.Io_error.Parse_error _ ->
              Printf.eprintf
                "scliques: refresh: ignoring index %s (corrupt)\n%!" ipath;
              None
          | exception Sys_error msg ->
              Printf.eprintf
                "scliques: refresh: ignoring index %s (unreadable: %s)\n%!"
                ipath msg;
              None
      in
      let prior_fingerprint =
        Option.map
          (fun idx r -> Some idx.Ridx.entries.(r).Ridx.fingerprint)
          index
      in
      let engine =
        match engine with
        | `Par -> `Par workers
        | `Alg alg -> `Seq alg
      in
      let delta =
        E.refresh ~min_size ~engine ~edits ?prior_fingerprint ~before ~after
          ~touched ~s ~prior ()
      in
      (match output with
      | None -> ()
      | Some path -> (
          match index with
          | Some idx ->
              (* seek-and-patch: re-encode only the re-run roots (the ones
                 whose fingerprint moved) and copy every other root's bytes
                 verbatim; the updated sidecar lands beside [out] *)
              let rerun = Hashtbl.create 16 in
              List.iter
                (fun (root, fp) ->
                  if idx.Ridx.entries.(root).Ridx.fingerprint <> fp then
                    Hashtbl.replace rerun root (fp, ref []))
                delta.E.root_fingerprints;
              List.iter
                (fun c ->
                  match Hashtbl.find_opt rerun (NS.min_elt c) with
                  | Some (_, acc) -> acc := c :: !acc
                  | None -> ())
                delta.E.results;
              let patched =
                Hashtbl.fold
                  (fun root (fp, acc) l -> (root, fp, List.rev !acc) :: l)
                  rerun []
              in
              let (_ : Ridx.t), st =
                or_parse_error (fun () ->
                    Ridx.splice ~old_stream:results_file ~index:idx ~patched
                      ~out:path)
              in
              Printf.eprintf
                "scliques: refresh: spliced %d roots (%d bytes fresh, %d \
                 bytes copied)\n%!"
                st.Ridx.roots_patched st.Ridx.fresh_bytes st.Ridx.copied_bytes
          | None ->
              (* no usable index: write the stream whole, then leave an
                 index behind so the next refresh can splice *)
              let w = Stream.open_writer path in
              List.iter (Stream.write_set w) delta.E.results;
              Stream.close w;
              let idx =
                Ridx.build ~s ~n
                  ~fingerprint:(Nh.root_fingerprint ~s after)
                  path
              in
              Ridx.save idx (Ridx.path_for path)));
      List.iter print_set delta.E.results;
      Printf.eprintf
        "scliques: refresh: %d edits touching %d nodes; %d roots re-run, %d \
         skipped, +%d -%d results (%d total)\n%!"
        (List.length edits) (List.length touched) delta.E.roots_rerun
        delta.E.roots_skipped
        (List.length delta.E.added)
        (List.length delta.E.removed)
        (List.length delta.E.results);
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "refresh"
       ~doc:
         "Incrementally update a complete enumeration after edge churn: apply \
          an SGRDIFF1 script, re-enumerate only the affected root branches \
          whose per-root fingerprint actually changed, and splice the rest of \
          the prior result stream through unchanged. When the stream has an \
          SCLQIDX1 sidecar (written by $(b,enum --checkpoint) and by this \
          command), stored fingerprints replace the before-graph digests and \
          $(b,-o) patches the stream by byte extent instead of rewriting it. \
          Prints the refreshed answer (canonically sorted) and, with \
          $(b,-o), writes it as a result stream plus a fresh sidecar.")
    Term.(
      ret
        (const run $ graph_file_arg $ format_arg $ diff_file_arg
       $ results_file_arg $ s_arg $ engine_arg $ workers_arg $ min_size_arg
       $ output_arg))

(* ---------- client ---------- *)

module Dproto = Scliques_daemon.Protocol
module Dclient = Scliques_daemon.Client
module Dserver = Scliques_daemon.Server

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Daemon's Unix-domain socket path.")

let tcp_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tcp" ] ~docv:"HOST:PORT" ~doc:"Daemon's TCP endpoint.")

let token_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "token" ] ~docv:"TOKEN"
        ~doc:
          "Client identity for the daemon's per-client quota: connections \
           announcing the same token share one quota bucket, and the bucket \
           survives reconnects. Without it the daemon bills by peer address \
           (TCP) or per-connection (Unix socket).")

let cdie fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "scliques: client: %s\n%!" msg;
      Stdlib.exit 1)
    fmt

let client_addr socket tcp =
  match (socket, tcp) with
  | Some _, Some _ -> cdie "--socket and --tcp are mutually exclusive"
  | Some path, None -> Dserver.Unix_socket path
  | None, Some spec -> (
      match String.rindex_opt spec ':' with
      | None -> cdie "--tcp %S: expected HOST:PORT" spec
      | Some i -> (
          let host = String.sub spec 0 i in
          let port = String.sub spec (i + 1) (String.length spec - i - 1) in
          match int_of_string_opt port with
          | Some p when p > 0 && p <= 0xFFFF -> Dserver.Tcp (host, p)
          | _ -> cdie "--tcp %S: bad port" spec))
  | None, None -> cdie "one of --socket PATH or --tcp HOST:PORT is required"

let client_connect ?token addr =
  match Dclient.connect addr with
  | c ->
      (* announce the quota identity before any billable request *)
      (match token with
      | Some tok -> Dclient.hello c ~token:tok
      | None -> ());
      c
  | exception Unix.Unix_error (e, _, _) ->
      cdie "cannot reach the daemon: %s" (Unix.error_message e)
  | exception Dproto.Error e ->
      cdie "handshake failed: %s" (Dproto.error_to_string e)

let client_id_arg =
  Arg.(
    value & opt int 1
    & info [ "id" ] ~docv:"ID" ~doc:"Client-chosen request id (echoed back).")

let retry_arg =
  Arg.(
    value & opt int 0
    & info [ "retry" ] ~docv:"N"
        ~doc:
          "On a quota refusal (Retry_after), sleep the advertised wait and \
           retry, at most $(docv) times, before giving up with exit code 6.")

(* The quota's advertised wait is honest (refusals are free), so the
   backoff is simply that wait — padded a little more on each attempt in
   case other clients drained the refill meanwhile. *)
let throttled ~what ~attempt ~retries wait =
  if attempt < retries then begin
    let pause = Float.max 0.001 wait +. (0.05 *. float_of_int attempt) in
    Printf.eprintf "scliques: client: %s throttled; retry %d/%d in %.3fs\n%!"
      what (attempt + 1) retries pause;
    Unix.sleepf pause;
    `Retry
  end
  else begin
    Printf.eprintf
      "scliques: client: %s refused by the per-client quota; retry after \
       %.3fs\n%!"
      what wait;
    Stdlib.exit 6
  end

let client_query_term =
  let graph_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"GRAPH"
          ~doc:"Name of a graph preloaded by the daemon.")
  in
  let algorithm_arg =
    let parse s =
      match String.lowercase_ascii s with
      | "par" | "parallel" -> Ok Dproto.Par
      | _ -> (
          match E.of_name s with
          | Some alg -> Ok (Dproto.Alg alg)
          | None -> Error (`Msg (Printf.sprintf "unknown algorithm %S" s)))
    in
    let print fmt = function
      | Dproto.Par -> Format.pp_print_string fmt "par"
      | Dproto.Alg alg -> Format.pp_print_string fmt (E.name alg)
    in
    Arg.(
      value
      & opt (conv (parse, print)) (Dproto.Alg E.Cs2_pf)
      & info [ "a"; "algorithm" ] ~docv:"ALG"
          ~doc:"Engine the daemon runs: the $(b,enum) names, or $(b,par).")
  in
  let min_size_arg =
    Arg.(
      value & opt int 0
      & info [ "min-size" ] ~docv:"K" ~doc:"Only results with at least $(docv) nodes.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"Per-query budget; a truncated query exits 3 and is resumable.")
  in
  let max_results_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-results" ] ~docv:"N"
          ~doc:"Stop the query after $(docv) results (counted across \
                $(b,--resume) continuations).")
  in
  let checkpoint_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:"On truncation, write the daemon's resume token to $(docv); \
                a complete query removes it.")
  in
  let resume_arg =
    Arg.(
      value
      & opt (some non_dir_file) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:"Resume from a token written by an earlier truncated query \
                against the same graph/s/min-size.")
  in
  let ping_arg =
    Arg.(value & flag & info [ "ping" ] ~doc:"Just check the daemon is alive.")
  in
  let list_arg =
    Arg.(
      value & flag
      & info [ "list" ] ~doc:"List the daemon's graphs (name, nodes, edges).")
  in
  let corrupt_arg =
    Arg.(
      value & flag
      & info [ "corrupt" ]
          ~doc:"Drill: send a garbage frame and show the typed refusal.")
  in
  let busy_drill_arg =
    Arg.(
      value & flag
      & info [ "busy-drill" ]
          ~doc:"Drill: occupy the daemon with one streaming query, then show \
                a second connection being refused with Busy (run the daemon \
                with $(b,--workers 1 --max-queue 0)).")
  in
  let die = cdie in
  let graph_meta c name =
    match
      List.find_opt (fun gi -> String.equal gi.Dproto.g_name name)
        (Dclient.list_graphs c)
    with
    | Some gi -> (gi.Dproto.g_n, gi.Dproto.g_m)
    | None -> die "daemon serves no graph %S" name
  in
  let run socket tcp token graph algorithm s min_size deadline max_results
      ckpt resume id retry ping list corrupt busy_drill =
    let addr = client_addr socket tcp in
    let connect addr = client_connect ?token addr in
    if ping then begin
      let c = connect addr in
      let ok = Dclient.ping c in
      Dclient.close c;
      if ok then begin
        print_endline "pong";
        Stdlib.exit 0
      end
      else die "no pong"
    end
    else if list then begin
      let c = connect addr in
      List.iter
        (fun gi ->
          Printf.printf "%s n=%d m=%d epoch=%d\n" gi.Dproto.g_name
            gi.Dproto.g_n gi.Dproto.g_m gi.Dproto.g_epoch)
        (Dclient.list_graphs c);
      Dclient.close c;
      Stdlib.exit 0
    end
    else if corrupt then begin
      let c = connect addr in
      (* a garbage length word: the daemon must answer a typed refusal,
         then hang up — never hang or die *)
      Dclient.send_raw c "\xde\xad\xbe\xef\xde\xad\xbe\xef";
      (match Dclient.read_response c with
      | Some (Dproto.Error_resp { e_code = Dproto.Bad_request; e_msg; _ }) ->
          Printf.printf "refused: %s\n" e_msg
      | Some _ -> die "expected a Bad_request refusal"
      | None -> die "daemon hung up without the typed refusal"
      | exception Dproto.Error e ->
          die "corrupt answer: %s" (Dproto.error_to_string e));
      (match Dclient.read_response c with
      | None -> ()
      | Some _ -> die "daemon kept talking after a framing error")
      |> ignore;
      Dclient.close c;
      Stdlib.exit 0
    end
    else begin
      let graph = match graph with Some g -> g | None -> die "GRAPH name required" in
      if s < 1 then die "s must be >= 1";
      if busy_drill then begin
        (* conn A streams; only after its first result is the daemon
           provably running=1, so conn B's refusal is deterministic *)
        let a = connect addr in
        let first = ref true in
        let refusal = ref None in
        let outcome =
          Dclient.run_query a
            ~on_result:(fun _ ->
              if !first then begin
                first := false;
                let b = connect addr in
                (match
                   Dclient.run_query b
                     {
                       Dproto.q_id = id + 1;
                       q_engine = algorithm;
                       q_graph = graph;
                       q_s = s;
                       q_min_size = min_size;
                       q_deadline_s = None;
                       q_max_results = None;
                       q_resume = None;
                     }
                 with
                | Dclient.Refused { running; queued } ->
                    refusal := Some (running, queued)
                | _ -> ());
                Dclient.close b;
                Dclient.cancel a id
              end)
            {
              Dproto.q_id = id;
              q_engine = algorithm;
              q_graph = graph;
              q_s = s;
              q_min_size = min_size;
              q_deadline_s = None;
              q_max_results = None;
              q_resume = None;
            }
        in
        Dclient.close a;
        match (!refusal, outcome) with
        | Some (running, queued), _ ->
            Printf.printf "busy: running=%d queued=%d\n" running queued;
            Stdlib.exit 0
        | None, Dclient.Finished _ ->
            die "drill query finished before the daemon looked busy \
                 (use a bigger graph)"
        | None, _ -> die "no Busy refusal observed"
      end
      else begin
        let c = connect addr in
        let n, m = graph_meta c graph in
        let prior =
          match resume with
          | None -> None
          | Some p ->
              let ck = Ckpt.load p in
              Ckpt.check_compat ck ~s ~n ~m ~min_size;
              Some ck
        in
        let ckpt_out = if ckpt <> None then ckpt else resume in
        let q =
          {
            Dproto.q_id = id;
            q_engine = algorithm;
            q_graph = graph;
            q_s = s;
            q_min_size = min_size;
            q_deadline_s = deadline;
            q_max_results = max_results;
            q_resume = Option.map (fun ck -> ck.Ckpt.state) prior;
          }
        in
        let rec attempt tries =
          match Dclient.run_query c ~on_result:print_endline q with
          | Dclient.Throttled wait -> (
              (* no result streamed yet — the quota refused admission, so
                 resending the identical query is safe *)
              match throttled ~what:"query" ~attempt:tries ~retries:retry wait with
              | `Retry -> attempt (tries + 1))
          | outcome -> outcome
        in
        let outcome = attempt 0 in
        Dclient.close c;
        match outcome with
        | Dclient.Throttled _ -> assert false (* [attempt] never returns it *)
        | Dclient.Finished d -> (
            match d.Dproto.d_outcome with
            | Budget.Complete ->
                (match ckpt_out with
                | Some p when Sys.file_exists p -> Sys.remove p
                | _ -> ());
                Stdlib.exit 0
            | Budget.Truncated reason -> (
                let prior_emitted =
                  match prior with Some ck -> ck.Ckpt.emitted | None -> 0
                in
                match (ckpt_out, d.Dproto.d_resume) with
                | Some p, Some state ->
                    Ckpt.save
                      {
                        Ckpt.algorithm =
                          (match algorithm with
                          | Dproto.Alg a -> E.name a
                          | Dproto.Par -> "Parallel");
                        s;
                        n;
                        m;
                        min_size;
                        emitted = prior_emitted + d.Dproto.d_emitted;
                        state;
                      }
                      p;
                    Printf.eprintf
                      "scliques: truncated (%s); checkpoint written to %s\n%!"
                      (Budget.reason_to_string reason)
                      p;
                    Stdlib.exit 3
                | _ ->
                    Printf.eprintf
                      "scliques: truncated (%s); no --checkpoint, progress \
                       lost\n%!"
                      (Budget.reason_to_string reason);
                    Stdlib.exit 3))
        | Dclient.Refused { running; queued } ->
            Printf.eprintf "scliques: busy (running=%d queued=%d)\n%!" running
              queued;
            Stdlib.exit 5
        | Dclient.Failed { msg; _ } -> die "%s" msg
        | Dclient.Disconnected -> die "daemon hung up mid-query"
      end
    end
  in
  Term.(
    const run $ socket_arg $ tcp_arg $ token_arg $ graph_arg $ algorithm_arg
    $ s_arg $ min_size_arg $ deadline_arg $ max_results_arg $ checkpoint_arg
    $ resume_arg $ client_id_arg $ retry_arg $ ping_arg $ list_arg
    $ corrupt_arg $ busy_drill_arg)

let client_mutate_cmd =
  let graph_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"GRAPH" ~doc:"Name of a graph preloaded by the daemon.")
  in
  let script_arg =
    let doc = "SGRDIFF1 edit-script file (written by $(b,scliques diff))." in
    Arg.(required & pos 1 (some non_dir_file) None & info [] ~docv:"FILE" ~doc)
  in
  let run socket tcp token graph script_file id retry =
    let addr = client_addr socket tcp in
    let script =
      let ic = open_in_bin script_file in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    (* validate locally with the daemon's own decoder, so a corrupt file
       dies with a byte-precise diagnostic before any bytes hit the wire
       (the daemon revalidates regardless) *)
    (match Sgraph.Diff.of_string ~file:script_file script with
    | (_ : Sgraph.Diff.header * Sgraph.Overlay.edit list) -> ()
    | exception Sgraph.Io_error.Parse_error { file; line; msg } ->
        cdie "%s" (Sgraph.Io_error.to_string ~file ~line msg));
    let c = client_connect ?token addr in
    let rec attempt tries =
      match Dclient.mutate c ~id ~graph ~script with
      | Dclient.Applied { epoch; edits; n; m } ->
          Printf.printf "applied %d edits; %s now n=%d m=%d epoch=%d\n" edits
            graph n m epoch;
          Dclient.close c;
          Stdlib.exit 0
      | Dclient.Mutate_throttled wait -> (
          match
            throttled ~what:"mutation" ~attempt:tries ~retries:retry wait
          with
          | `Retry -> attempt (tries + 1))
      | Dclient.Mutate_failed { msg; _ } -> cdie "%s" msg
      | Dclient.Mutate_disconnected -> cdie "daemon hung up mid-mutation"
    in
    attempt 0
  in
  Cmd.v
    (Cmd.info "mutate"
       ~doc:
         "Apply an SGRDIFF1 edit script to a graph served by a running \
          $(b,scliques-daemon). The daemon journals the edits durably \
          (flush-before-ack) and acks with the new epoch; queries already \
          running are unaffected. The script's header must name the graph's \
          $(i,current) (n, m) — see $(b,client --list) for the epoch. Exit \
          code 0 applied, 6 quota-refused (after $(b,--retry) attempts), 1 \
          error.")
    Term.(
      const run $ socket_arg $ tcp_arg $ token_arg $ graph_arg $ script_arg
      $ client_id_arg $ retry_arg)

let client_reload_cmd =
  let graph_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"GRAPH" ~doc:"Name of a graph preloaded by the daemon.")
  in
  let run socket tcp graph id =
    let addr = client_addr socket tcp in
    let c = client_connect addr in
    match Dclient.reload c ~id ~graph with
    | Dclient.Swapped { epoch; n; m } ->
        Printf.printf "reloaded %s: n=%d m=%d epoch=%d\n" graph n m epoch;
        Dclient.close c;
        Stdlib.exit 0
    | Dclient.Reload_failed { msg; _ } -> cdie "%s" msg
    | Dclient.Reload_disconnected -> cdie "daemon hung up mid-reload"
  in
  Cmd.v
    (Cmd.info "reload"
       ~doc:
         "Hot-swap a graph served by a running $(b,scliques-daemon): re-read \
          it from its source snapshot (sessions survive; in-flight queries \
          finish on the epoch they were admitted under). Equivalent to \
          sending the daemon SIGHUP, for one graph.")
    Term.(const run $ socket_arg $ tcp_arg $ graph_arg $ client_id_arg)

let client_cmd =
  Cmd.group
    ~default:client_query_term
    (Cmd.info "client"
       ~doc:
         "Talk to a running $(b,scliques-daemon) over the SCLQRPC1 socket \
          protocol. With no subcommand: stream all maximal connected \
          s-cliques of a preloaded graph. Exit code 0 means the answer is \
          complete, 3 truncated (resumable via $(b,--checkpoint)), 5 refused \
          by admission control, 6 refused by the per-client quota, 1 error.")
    [ client_mutate_cmd; client_reload_cmd ]

let () =
  let doc = "maximal connected s-clique enumeration (Behar & Cohen, EDBT 2018)" in
  let info = Cmd.info "scliques" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ gen_cmd; enum_cmd; stats_cmd; power_cmd; convert_cmd; verify_cmd;
            diff_cmd; mutate_cmd; refresh_cmd; client_cmd ]))
