(* Bechamel micro-benchmarks: one Test.make per table/figure, run on
   reduced instances so the statistical sampler can afford many runs.
   These complement the paper-shaped tables of Experiments with properly
   sampled per-operation costs. *)

open Bechamel

module E = Scliques_core.Enumerate

let micro_quota = 20 (* results per micro run *)

let first_n alg g ~s () = ignore (E.first_n alg g ~s micro_quota)

let micro_er () = Workloads.er ~n:250 ~avg_degree:8.

let micro_sf () = Workloads.sf ~n:250 ~avg_degree:8.

let micro_dense () = Workloads.er ~n:200 ~avg_degree:16.

(* s = 3 balls cover most of a 250-node graph, so the s=3 micro tests get
   their own smaller instances to keep one run under the sampling quota *)
let micro_er_s3 () = Workloads.er ~n:100 ~avg_degree:6.

let micro_sf_s3 () = Workloads.sf ~n:100 ~avg_degree:6.

let tests () =
  let er = micro_er () and sf = micro_sf () and dense = micro_dense () in
  let proxy = (List.hd (Workloads.datasets ())).Workloads.proxy () in
  [
    (* one per figure, on its family's micro instance *)
    Test.make ~name:"fig9a:CS1-ER" (Staged.stage (first_n E.Cs1 er ~s:2));
    Test.make ~name:"fig9a:CS2-ER" (Staged.stage (first_n E.Cs2 er ~s:2));
    Test.make ~name:"fig9b:CS2P-ER" (Staged.stage (first_n E.Cs2_p er ~s:2));
    Test.make ~name:"fig9b:PD-ER" (Staged.stage (first_n E.Poly_delay er ~s:2));
    Test.make ~name:"fig9c:CS2P-SF" (Staged.stage (first_n E.Cs2_p sf ~s:2));
    Test.make ~name:"fig9d:CS2P-dense" (Staged.stage (first_n E.Cs2_p dense ~s:2));
    Test.make ~name:"fig9e:CS2P-s3" (Staged.stage (first_n E.Cs2_p (micro_er_s3 ()) ~s:3));
    Test.make ~name:"fig9f:CS2P-first200"
      (Staged.stage (fun () -> ignore (E.first_n E.Cs2_p er ~s:2 200)));
    Test.make ~name:"fig9g:CS2PF-SF" (Staged.stage (first_n E.Cs2_pf sf ~s:2));
    Test.make ~name:"fig9h:CS2PF-s3-SF"
      (Staged.stage (first_n E.Cs2_pf (micro_sf_s3 ()) ~s:3));
    Test.make ~name:"fig9i:CS2P-proxy" (Staged.stage (first_n E.Cs2_p proxy ~s:2));
    Test.make ~name:"fig10:CS2P-k8"
      (Staged.stage (fun () -> ignore (E.first_n ~min_size:8 E.Cs2_p er ~s:2 micro_quota)));
    Test.make ~name:"fig11:sample-sizes"
      (Staged.stage (fun () -> ignore (Scliques_core.Stats.sample E.Cs2_p er ~s:2 micro_quota)));
    (* instrumentation overhead: the ?obs-less path must sit within noise
       of the pre-observability baseline (it is the same code compiled
       with one more [match] on None); obs:on shows the enabled cost *)
    Test.make ~name:"obs:off-CS2P-ER" (Staged.stage (first_n E.Cs2_p er ~s:2));
    Test.make ~name:"obs:on-CS2P-ER"
      (Staged.stage (fun () ->
           let obs = Scliques_obs.Obs.create () in
           ignore (E.first_n ~obs E.Cs2_p er ~s:2 micro_quota)));
    Test.make ~name:"obs:off-PD-ER" (Staged.stage (first_n E.Poly_delay er ~s:2));
    Test.make ~name:"obs:on-PD-ER"
      (Staged.stage (fun () ->
           let obs = Scliques_obs.Obs.create () in
           ignore (E.first_n ~obs E.Poly_delay er ~s:2 micro_quota)));
  ]

let run () =
  let cfg =
    Benchmark.cfg ~limit:50
      ~quota:(Time.second (if Harness.fast then 0.15 else 0.4))
      ~kde:None ~stabilize:false ()
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let grouped = Test.make_grouped ~name:"scliques" ~fmt:"%s %s" (tests ()) in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Printf.printf "\n== Bechamel micro-benchmarks (ns per run, OLS on monotonic clock) ==\n";
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let estimate =
          match Analyze.OLS.estimates ols with Some (t :: _) -> t | _ -> nan
        in
        (name, estimate) :: acc)
      results []
  in
  List.iter
    (fun (name, ns) -> Printf.printf "  %-28s %12.0f ns/run (%.3f ms)\n" name ns (ns /. 1e6))
    (List.sort compare rows);
  flush stdout
