(* Bechamel micro-benchmarks: one Test.make per table/figure, run on
   reduced instances so the statistical sampler can afford many runs.
   These complement the paper-shaped tables of Experiments with properly
   sampled per-operation costs. *)

open Bechamel

module E = Scliques_core.Enumerate

let micro_quota = 20 (* results per micro run *)

let first_n alg g ~s () = ignore (E.first_n alg g ~s micro_quota)

let micro_er () = Workloads.er ~n:250 ~avg_degree:8.

let micro_sf () = Workloads.sf ~n:250 ~avg_degree:8.

let micro_dense () = Workloads.er ~n:200 ~avg_degree:16.

(* s = 3 balls cover most of a 250-node graph, so the s=3 micro tests get
   their own smaller instances to keep one run under the sampling quota *)
let micro_er_s3 () = Workloads.er ~n:100 ~avg_degree:6.

let micro_sf_s3 () = Workloads.sf ~n:100 ~avg_degree:6.

(* List-vs-bitset kernel pairs, each shaped like a real hot path: the
   bitset side must be no slower than the sorted-merge baseline it
   replaced (EXPERIMENTS.md records the measured margins). Balls are
   materialized once, outside the staged closures. *)
let kernel_tests () =
  let module NS = Sgraph.Node_set in
  let module NH = Scliques_core.Neighborhood in
  let g = Workloads.er ~n:1000 ~avg_degree:12. in
  let nh = NH.create ~s:2 g in
  let p = NH.ball nh 0 and x = NH.ball nh 1 and b = NH.ball nh 2 in
  (* a C set shaped like a real carve set: ball members, so neighbor rows
     overlap heavily *)
  let take k s = NS.of_list (List.filteri (fun i _ -> i < k) (NS.to_list s)) in
  let c_big = take 32 p in
  (* pivot scoring scans every candidate ball once; balls are
     materialized outside the staged closures so the pair measures the
     counting kernels, not the shared ball-cache lookups. The list
     baseline is the seed's non-allocating merge count. *)
  let cand_balls = List.map (NH.ball nh) (NS.to_list (take 20 b)) in
  let cap = Sgraph.Graph.n g in
  let bp = NS.to_bitset p ~capacity:cap and bb = NS.to_bitset b ~capacity:cap in
  let scratch = Scoll.Bitset.copy bp in
  [
    (* the word-parallel kernel itself, operands preloaded: intersect
       then restore (union back) so every run starts from the same state —
       even doing TWO word passes per run it must beat one sorted merge *)
    Test.make ~name:"kernel:interword-list"
      (Staged.stage (fun () -> ignore (NS.inter p b)));
    Test.make ~name:"kernel:interword-bitset"
      (Staged.stage (fun () ->
           Scoll.Bitset.inter_into ~into:scratch bb;
           Scoll.Bitset.union_into ~into:scratch bp));
    Test.make ~name:"kernel:unionword-list"
      (Staged.stage (fun () -> ignore (NS.union p b)));
    Test.make ~name:"kernel:unionword-bitset"
      (Staged.stage (fun () ->
           Scoll.Bitset.union_into ~into:scratch bb;
           Scoll.Bitset.inter_into ~into:scratch bp));
    Test.make ~name:"kernel:diffword-list"
      (Staged.stage (fun () -> ignore (NS.diff p b)));
    Test.make ~name:"kernel:diffword-bitset"
      (Staged.stage (fun () ->
           Scoll.Bitset.diff_into ~into:scratch bb;
           Scoll.Bitset.union_into ~into:scratch bp));
    (* branch-loop shape: one ball filters both P and X *)
    Test.make ~name:"kernel:px-filter-list"
      (Staged.stage (fun () ->
           ignore (NS.inter p b);
           ignore (NS.inter x b)));
    Test.make ~name:"kernel:px-filter-bitset"
      (Staged.stage (fun () ->
           let m = NH.load_mask nh b in
           ignore (NS.inter_bitset p m);
           ignore (NS.inter_bitset x m)));
    (* pivot shape: |P \ ball(u)| for every candidate u *)
    Test.make ~name:"kernel:pivot-scan-list"
      (Staged.stage (fun () ->
           List.iter (fun b -> ignore (NS.diff_cardinal p b)) cand_balls));
    Test.make ~name:"kernel:pivot-scan-bitset"
      (Staged.stage (fun () ->
           (* the shape select_pivot uses: P loaded once, candidate balls
              scanned against it — |P \ ball(u)| = |P| − |ball(u) ∩ P| *)
           let pm = NH.load_mask nh p in
           let psz = NS.cardinal p in
           List.iter
             (fun b -> ignore (psz - NS.inter_bitset_cardinal b pm))
             cand_balls));
    (* N^{∀,s}(C) has NO mask pair: the chained ball intersection stays on
       galloping sorted merges, which beat mask reloads ~2x there (see
       Neighborhood.ball_forall and EXPERIMENTS.md).
       N^{∃,1}(C): running sorted union (grows with the accumulator) vs
       bitset scatter-collect *)
    Test.make ~name:"kernel:adjany-list"
      (Staged.stage (fun () ->
           ignore
             (NS.diff
                (NS.fold
                   (fun v acc -> NS.union acc (Sgraph.Graph.neighbor_set g v))
                   c_big NS.empty)
                c_big)));
    Test.make ~name:"kernel:adjany-bitset"
      (Staged.stage (fun () -> ignore (NH.adjacent_any nh c_big)));
  ]

let tests () =
  let er = micro_er () and sf = micro_sf () and dense = micro_dense () in
  let proxy = (List.hd (Workloads.datasets ())).Workloads.proxy () in
  kernel_tests ()
  @ [
    (* one per figure, on its family's micro instance *)
    Test.make ~name:"fig9a:CS1-ER" (Staged.stage (first_n E.Cs1 er ~s:2));
    Test.make ~name:"fig9a:CS2-ER" (Staged.stage (first_n E.Cs2 er ~s:2));
    Test.make ~name:"fig9b:CS2P-ER" (Staged.stage (first_n E.Cs2_p er ~s:2));
    Test.make ~name:"fig9b:PD-ER" (Staged.stage (first_n E.Poly_delay er ~s:2));
    Test.make ~name:"fig9c:CS2P-SF" (Staged.stage (first_n E.Cs2_p sf ~s:2));
    Test.make ~name:"fig9d:CS2P-dense" (Staged.stage (first_n E.Cs2_p dense ~s:2));
    Test.make ~name:"fig9e:CS2P-s3" (Staged.stage (first_n E.Cs2_p (micro_er_s3 ()) ~s:3));
    Test.make ~name:"fig9f:CS2P-first200"
      (Staged.stage (fun () -> ignore (E.first_n E.Cs2_p er ~s:2 200)));
    Test.make ~name:"fig9g:CS2PF-SF" (Staged.stage (first_n E.Cs2_pf sf ~s:2));
    Test.make ~name:"fig9h:CS2PF-s3-SF"
      (Staged.stage (first_n E.Cs2_pf (micro_sf_s3 ()) ~s:3));
    Test.make ~name:"fig9i:CS2P-proxy" (Staged.stage (first_n E.Cs2_p proxy ~s:2));
    Test.make ~name:"fig10:CS2P-k8"
      (Staged.stage (fun () -> ignore (E.first_n ~min_size:8 E.Cs2_p er ~s:2 micro_quota)));
    Test.make ~name:"fig11:sample-sizes"
      (Staged.stage (fun () -> ignore (Scliques_core.Stats.sample E.Cs2_p er ~s:2 micro_quota)));
    (* instrumentation overhead: the ?obs-less path must sit within noise
       of the pre-observability baseline (it is the same code compiled
       with one more [match] on None); obs:on shows the enabled cost *)
    Test.make ~name:"obs:off-CS2P-ER" (Staged.stage (first_n E.Cs2_p er ~s:2));
    Test.make ~name:"obs:on-CS2P-ER"
      (Staged.stage (fun () ->
           let obs = Scliques_obs.Obs.create () in
           ignore (E.first_n ~obs E.Cs2_p er ~s:2 micro_quota)));
    Test.make ~name:"obs:off-PD-ER" (Staged.stage (first_n E.Poly_delay er ~s:2));
    Test.make ~name:"obs:on-PD-ER"
      (Staged.stage (fun () ->
           let obs = Scliques_obs.Obs.create () in
           ignore (E.first_n ~obs E.Poly_delay er ~s:2 micro_quota)));
  ]

let run ?filter () =
  let cfg =
    Benchmark.cfg ~limit:50
      ~quota:(Time.second (if Harness.fast then 0.15 else 0.4))
      ~kde:None ~stabilize:false ()
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let selected =
    match filter with
    | None -> tests ()
    | Some prefix ->
        List.filter
          (fun t ->
            let name = Test.name t in
            String.length name >= String.length prefix
            && String.equal (String.sub name 0 (String.length prefix)) prefix)
          (tests ())
  in
  let grouped = Test.make_grouped ~name:"scliques" ~fmt:"%s %s" selected in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Printf.printf "\n== Bechamel micro-benchmarks (ns per run, OLS on monotonic clock) ==\n";
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let estimate =
          match Analyze.OLS.estimates ols with Some (t :: _) -> t | _ -> nan
        in
        (name, estimate) :: acc)
      results []
  in
  List.iter
    (fun (name, ns) -> Printf.printf "  %-28s %12.0f ns/run (%.3f ms)\n" name ns (ns /. 1e6))
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows);
  flush stdout
