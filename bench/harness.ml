(* Timing, budgets, and table rendering for the experiment suite.

   Every figure of the paper is reproduced as a table: one row per
   algorithm, one column per swept parameter value. Cells hold wall-clock
   seconds, or ">B" when the per-cell time budget B was exhausted before
   the measurement finished (the paper reports the same as "timed out").

   Environment knobs:
     FAST=1      smaller workloads (quick smoke of the whole suite)
     BUDGET=<s>  per-cell wall-clock budget in seconds (default 30; 6 fast)
     SEED=<n>    base RNG seed for all generated workloads (default 42)

   The --smoke command-line flag (used by CI) is equivalent to FAST=1;
   it is detected here, at module initialization, because the workload
   size lists derived from [fast] are themselves computed when the
   Workloads module initializes — a flag parsed later in main would come
   too late to shrink them. *)

let smoke = Array.exists (String.equal "--smoke") Sys.argv

let fast =
  smoke || match Sys.getenv_opt "FAST" with Some ("1" | "true") -> true | _ -> false

let budget =
  match Option.bind (Sys.getenv_opt "BUDGET") float_of_string_opt with
  | Some b when b > 0. -> b
  | _ -> if fast then 6. else 30.

let seed =
  match Option.bind (Sys.getenv_opt "SEED") int_of_string_opt with
  | Some s -> s
  | None -> 42

(* monotonic: a budget must not be stretched or cut by NTP slew *)
let now = Scliques_obs.Clock.now

(* Outcome of one measured cell. *)
type outcome =
  | Seconds of float
  | Timeout
  | Note of string  (** free-form cell, e.g. a count or size *)

let cell_to_string = function
  | Seconds t -> if t < 0.0005 then "<0.001" else Printf.sprintf "%.3f" t
  | Timeout -> Printf.sprintf ">%g" budget
  | Note s -> s

(* Run [f], handing it a [should_continue] tied to the budget. [f] must
   return [true] when it finished its measurement and [false] when it was
   cut short (it sees the same information through should_continue). *)
let timed (f : should_continue:(unit -> bool) -> bool) : outcome =
  let t0 = now () in
  let deadline = t0 +. budget in
  let completed = f ~should_continue:(fun () -> now () < deadline) in
  let dt = now () -. t0 in
  if completed then Seconds dt else Timeout

(* Time to produce [quota] results of an enumeration, budget-bounded.
   Completing the whole enumeration with fewer than [quota] results counts
   as success (everything available was produced). *)
let time_first_n ~quota iter_fn : outcome =
  timed (fun ~should_continue ->
      let got = ref 0 in
      let exception Enough in
      (try
         iter_fn ~should_continue (fun _ ->
             incr got;
             if !got >= quota then raise Enough)
       with Enough -> ());
      !got >= quota || should_continue ())

let print_table ~title ~columns ~rows =
  let width = 12 in
  let label_width =
    List.fold_left (fun acc (label, _) -> max acc (String.length label)) 14 rows
  in
  Printf.printf "\n== %s ==\n" title;
  Printf.printf "%-*s" label_width "";
  List.iter (fun c -> Printf.printf " %*s" width c) columns;
  print_newline ();
  List.iter
    (fun (label, cells) ->
      Printf.printf "%-*s" label_width label;
      List.iter (fun c -> Printf.printf " %*s" width (cell_to_string c)) cells;
      print_newline ())
    rows;
  flush stdout

let section title =
  Printf.printf "\n############ %s ############\n%!" title

(* Machine-readable sink next to the human tables: experiments append
   JSON snapshots (delay quantiles, cache counters) to files like
   BENCH_delay.json in the working directory, so successive runs leave a
   comparable perf trail. *)
let write_json ~path json =
  Scliques_obs.Sink.write_file ~path (Scliques_obs.Sink.to_string json);
  Printf.printf "[wrote %s]\n%!" path

(* Append one compact JSON object as a new line (JSONL), preserving the
   records of earlier runs — the scaling experiment accumulates a
   cross-commit perf trail this way. *)
let append_json ~path json =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  output_string oc (Scliques_obs.Sink.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "[appended to %s]\n%!" path
