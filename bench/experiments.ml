(* One function per table/figure of the paper's evaluation (§7), plus the
   ablation studies listed in DESIGN.md. Each prints a table in the shape
   of the corresponding figure; EXPERIMENTS.md records paper-vs-measured. *)

module E = Scliques_core.Enumerate
module G = Sgraph.Graph
module NS = Sgraph.Node_set

let quota = 100 (* the paper measures "time to return 100 connected s-cliques" *)

let abbrev n =
  if n >= 1_000_000 then Printf.sprintf "%dM" (n / 1_000_000)
  else if n >= 1000 then Printf.sprintf "%dK" (n / 1000)
  else string_of_int n

(* time to the first [quota] results of [alg] on [g] *)
let first_n ?(min_size = 0) ?(optimized = true) ?(quota = quota) alg g ~s =
  Harness.time_first_n ~quota (fun ~should_continue yield ->
      E.iter ~min_size ~optimized ~should_continue alg g ~s yield)

let sweep ~title ~columns ~algorithms ~cell =
  let rows = List.map (fun alg -> (E.name alg, List.map (cell alg) columns)) algorithms in
  Harness.print_table ~title
    ~columns:(List.map fst columns)
    ~rows

(* ---------- §7 dataset table ---------- *)

let datasets () =
  Printf.printf "\n== Datasets (paper: SNAP; here: synthetic proxies, DESIGN.md §4) ==\n";
  Printf.printf "%-12s %22s %22s %8s %10s\n" "" "paper (n, m)" "proxy (n, m)" "avg_deg"
    "triangles";
  List.iter
    (fun d ->
      let g = d.Workloads.proxy () in
      Printf.printf "%-12s %22s %22s %8.1f %10d\n" d.Workloads.name
        (Printf.sprintf "(%d, %d)" d.Workloads.paper_nodes d.Workloads.paper_edges)
        (Printf.sprintf "(%d, %d)" (G.n g) (G.m g))
        (Sgraph.Metrics.avg_degree g)
        (Sgraph.Metrics.triangle_count g))
    (Workloads.datasets ());
  flush stdout

(* ---------- Figure 9 ---------- *)

let fig9a () =
  sweep ~title:"Fig 9a: Bron-Kerbosch adaptations, ER graphs, s=2, first 100"
    ~columns:
      (List.map (fun n -> ("ER" ^ abbrev n, n)) Workloads.er_sizes_9a)
    ~algorithms:[ E.Cs1; E.Cs2; E.Cs2_f; E.Cs2_p; E.Cs2_pf ]
    ~cell:(fun alg (_, n) -> first_n alg (Workloads.er ~n ~avg_degree:10.) ~s:2)

let main_three = [ E.Cs2_p; E.Cs2_pf; E.Poly_delay ]

let fig9b () =
  sweep ~title:"Fig 9b: varying nodes, ER graphs, s=2, first 100"
    ~columns:(List.map (fun n -> ("ER" ^ abbrev n, n)) Workloads.er_sizes_9b)
    ~algorithms:main_three
    ~cell:(fun alg (_, n) -> first_n alg (Workloads.er ~n ~avg_degree:10.) ~s:2)

let fig9c () =
  sweep ~title:"Fig 9c: varying nodes, SF graphs, s=2, first 100 (paper: log scale)"
    ~columns:(List.map (fun n -> ("SF" ^ abbrev n, n)) Workloads.sf_sizes_9c)
    ~algorithms:main_three
    ~cell:(fun alg (_, n) -> first_n alg (Workloads.sf ~n ~avg_degree:10.) ~s:2)

let fig9d () =
  sweep
    ~title:
      (Printf.sprintf "Fig 9d: varying edge density, ER n=%s, s=2, first 100"
         (abbrev Workloads.n_9d))
    ~columns:(List.map (fun d -> (Printf.sprintf "ER%gD" d, d)) Workloads.densities_er)
    ~algorithms:main_three
    ~cell:(fun alg (_, d) ->
      first_n alg (Workloads.er ~n:Workloads.n_9d ~avg_degree:d) ~s:2)

let fig9e () =
  sweep
    ~title:
      (Printf.sprintf "Fig 9e: varying s, ER n=%s deg 10, first 100"
         (abbrev Workloads.n_9e))
    ~columns:(List.map (fun s -> (Printf.sprintf "s=%d" s, s)) [ 1; 2; 3 ])
    ~algorithms:main_three
    ~cell:(fun alg (_, s) -> first_n alg (Workloads.er ~n:Workloads.n_9e ~avg_degree:10.) ~s)

let fig9g () =
  sweep
    ~title:
      (Printf.sprintf "Fig 9g: varying edge density, SF n=%s, s=2, first 100"
         (abbrev Workloads.n_sf))
    ~columns:(List.map (fun d -> (Printf.sprintf "SF%gD" d, d)) Workloads.densities_sf)
    ~algorithms:main_three
    ~cell:(fun alg (_, d) ->
      first_n alg (Workloads.sf ~n:Workloads.n_sf ~avg_degree:d) ~s:2)

let fig9h () =
  sweep
    ~title:
      (Printf.sprintf "Fig 9h: varying s, SF n=%s deg 10, first 100 (paper: log scale)"
         (abbrev Workloads.n_sf))
    ~columns:(List.map (fun s -> (Printf.sprintf "s=%d" s, s)) [ 1; 2; 3 ])
    ~algorithms:main_three
    ~cell:(fun alg (_, s) -> first_n alg (Workloads.sf ~n:Workloads.n_sf ~avg_degree:10.) ~s)

let fig9i () =
  sweep ~title:"Fig 9i: real-data proxies, s=2, first 100"
    ~columns:(List.map (fun d -> (d.Workloads.name, d)) (Workloads.datasets ()))
    ~algorithms:main_three
    ~cell:(fun alg (_, d) -> first_n alg (d.Workloads.proxy ()) ~s:2)

(* Fig 9f: enumerate ALL results; report the delay of each tenth of the
   output (the paper reports time between every 10K results on a graph
   with 112,134 of them). *)
let fig9f () =
  let g = Workloads.er ~n:Workloads.n_9f ~avg_degree:10. in
  (* count the output within budget using the fastest variant *)
  let total = ref 0 in
  let counted =
    Harness.timed (fun ~should_continue ->
        E.iter ~should_continue E.Cs2_p g ~s:2 (fun _ -> incr total);
        should_continue ())
  in
  match counted with
  | Harness.Timeout ->
      Printf.printf
        "\n== Fig 9f: skipped (could not count all results within budget; got %d) ==\n"
        !total
  | _ ->
      let total = !total in
      let step = max 1 (total / 10) in
      let checkpoints = List.init 10 (fun i -> min total ((i + 1) * step)) in
      let row alg =
        let deltas = Array.make 10 Harness.Timeout in
        let t0 = Unix.gettimeofday () in
        let last = ref t0 in
        let seen = ref 0 in
        let bucket = ref 0 in
        ignore
          (Harness.timed (fun ~should_continue ->
               E.iter ~should_continue alg g ~s:2 (fun _ ->
                   incr seen;
                   if !bucket < 10 && !seen = List.nth checkpoints !bucket then begin
                     let t = Unix.gettimeofday () in
                     deltas.(!bucket) <- Harness.Seconds (t -. !last);
                     last := t;
                     incr bucket
                   end);
               should_continue ()));
        (E.name alg, Array.to_list deltas)
      in
      Harness.print_table
        ~title:
          (Printf.sprintf
             "Fig 9f: delay per tenth of all %d results, ER n=%s deg 10, s=2" total
             (abbrev Workloads.n_9f))
        ~columns:(List.map (fun c -> string_of_int c) checkpoints)
        ~rows:(List.map row [ E.Cs2_p; E.Cs2_pf; E.Poly_delay ])

(* ---------- Figure 10: large results ---------- *)

let fig10_rows g ~s ks =
  let variant (alg, optimized) =
    let label = E.name alg ^ if optimized then " opt" else " plain" in
    ( label,
      List.map (fun k -> first_n ~min_size:k ~optimized alg g ~s) ks )
  in
  List.map variant
    [ (E.Cs2_p, true); (E.Cs2_pf, true); (E.Poly_delay, true);
      (E.Cs2_p, false); (E.Cs2_pf, false); (E.Poly_delay, false) ]

let fig10a () =
  let g = Workloads.er ~n:Workloads.n_9d ~avg_degree:10. in
  Harness.print_table
    ~title:
      (Printf.sprintf
         "Fig 10a: 100 results of size >= k, ER n=%s deg 10, s=2 (opt vs plain)"
         (abbrev Workloads.n_9d))
    ~columns:(List.map (fun k -> Printf.sprintf "k=%d" k) Workloads.ks_er)
    ~rows:(fig10_rows g ~s:2 Workloads.ks_er)

let fig10b () =
  let g = Workloads.sf ~n:Workloads.n_sf ~avg_degree:10. in
  Harness.print_table
    ~title:
      (Printf.sprintf
         "Fig 10b: 100 results of size >= k, SF n=%s deg 10, s=2 (opt vs plain)"
         (abbrev Workloads.n_sf))
    ~columns:(List.map (fun k -> Printf.sprintf "k=%d" k) Workloads.ks_sf)
    ~rows:(fig10_rows g ~s:2 Workloads.ks_sf)

let fig10c () =
  let k = Workloads.k_real in
  Harness.print_table
    ~title:
      (Printf.sprintf "Fig 10c: 100 results of size >= %d on real-data proxies, s=2" k)
    ~columns:(List.map (fun d -> d.Workloads.name) (Workloads.datasets ()))
    ~rows:
      (List.map
         (fun (alg, optimized) ->
           ( (E.name alg ^ if optimized then " opt" else " plain"),
             List.map
               (fun d -> first_n ~min_size:k ~optimized alg (d.Workloads.proxy ()) ~s:2)
               (Workloads.datasets ()) ))
         [ (E.Cs2_p, true); (E.Cs2_pf, true); (E.Poly_delay, true);
           (E.Cs2_p, false); (E.Cs2_pf, false); (E.Poly_delay, false) ])

(* ---------- Figure 11: sizes of sampled s-cliques ---------- *)

let fig11 () =
  let sample g ~s =
    let results = ref [] in
    let outcome =
      Harness.time_first_n ~quota:100 (fun ~should_continue yield ->
          E.iter ~should_continue E.Cs2_p g ~s (fun c ->
              results := c :: !results;
              yield c))
    in
    let stats = Scliques_core.Stats.of_results !results in
    match outcome with
    | Harness.Timeout when stats.Scliques_core.Stats.count = 0 -> Harness.Timeout
    | Harness.Timeout ->
        (* partial sample: mark it *)
        Harness.Note
          (Printf.sprintf "%.1f/%d*" stats.Scliques_core.Stats.avg_size
             stats.Scliques_core.Stats.max_size)
    | _ ->
        Harness.Note
          (Printf.sprintf "%.1f/%d" stats.Scliques_core.Stats.avg_size
             stats.Scliques_core.Stats.max_size)
  in
  Harness.print_table
    ~title:"Fig 11: avg/max size of 100 sampled maximal connected s-cliques"
    ~columns:(List.map (fun d -> d.Workloads.name) (Workloads.datasets ()))
    ~rows:
      (List.map
         (fun s ->
           ( Printf.sprintf "s=%d (avg/max)" s,
             List.map (fun d -> sample (d.Workloads.proxy ()) ~s) (Workloads.datasets ())
           ))
         [ 1; 2; 3 ])

(* ---------- ablations (DESIGN.md §5) ---------- *)

let abl_cache () =
  let g = Workloads.er ~n:Workloads.n_9d ~avg_degree:10. in
  let row capacity =
    let label =
      if capacity = 0 then "no cache" else Printf.sprintf "cache %d" capacity
    in
    let nh = ref None in
    let outcome =
      Harness.time_first_n ~quota:1000 (fun ~should_continue yield ->
          let n = Scliques_core.Neighborhood.create ~cache_capacity:capacity ~s:2 g in
          nh := Some n;
          Scliques_core.Cs_cliques2.iter ~pivot:true ~should_continue n yield)
    in
    let hit_rate =
      match !nh with
      | None -> Harness.Note "-"
      | Some n ->
          let s = Scliques_core.Neighborhood.cache_stats n in
          let total = s.Scoll.Lri_cache.hits + s.Scoll.Lri_cache.misses in
          if total = 0 then Harness.Note "-"
          else
            Harness.Note
              (Printf.sprintf "%.0f%%"
                 (100. *. float_of_int s.Scoll.Lri_cache.hits /. float_of_int total))
    in
    (label, [ outcome; hit_rate ])
  in
  Harness.print_table
    ~title:
      (Printf.sprintf
         "Ablation: N^s cache (CSCliques2P, first 1000, ER n=%s deg 10, s=2)"
         (abbrev Workloads.n_9d))
    ~columns:[ "time"; "hit rate" ]
    ~rows:(List.map row [ 0; 256; 65536 ])

let abl_index () =
  let g = Workloads.er ~n:Workloads.n_index ~avg_degree:10. in
  let nh () = Scliques_core.Neighborhood.create ~s:2 g in
  let row (label, index_mode) =
    let stats = ref None in
    let outcome =
      Harness.timed (fun ~should_continue ->
          stats :=
            Some
              (Scliques_core.Poly_delay.iter_with_stats ~index_mode ~should_continue
                 (nh ()) (fun _ -> ()));
          should_continue ())
    in
    let extras =
      match !stats with
      | Some s ->
          [ Harness.Note (string_of_int s.Scliques_core.Poly_delay.generated);
            Harness.Note (string_of_int s.Scliques_core.Poly_delay.index_height) ]
      | None -> [ Harness.Note "-"; Harness.Note "-" ]
    in
    (label, outcome :: extras)
  in
  Harness.print_table
    ~title:
      (Printf.sprintf "Ablation: PolyDelayEnum index structure (all results, ER n=%s)"
         (abbrev Workloads.n_index))
    ~columns:[ "time"; "generated"; "height" ]
    ~rows:
      (List.map row
         [ ("B-tree (paper)", Scliques_core.Poly_delay.Btree);
           ("hashtable", Scliques_core.Poly_delay.Hashtable) ])

let abl_pivot () =
  (* full enumeration: the pivot rule's value is the recursion-tree size it
     saves, which first-100 runs barely exercise *)
  let n = if Harness.fast then 300 else 1000 in
  let cell rule g =
    Harness.timed (fun ~should_continue ->
        Scliques_core.Cs_cliques2.iter ~pivot:true ~pivot_rule:rule ~should_continue
          (Scliques_core.Neighborhood.create ~s:2 g)
          (fun _ -> ());
        should_continue ())
  in
  Harness.print_table
    ~title:(Printf.sprintf "Ablation: pivot selection rule (ALL results, n=%d, s=2)" n)
    ~columns:[ "ER"; "SF" ]
    ~rows:
      (List.map
         (fun (label, rule) ->
           ( label,
             [ cell rule (Workloads.er ~n ~avg_degree:10.);
               cell rule (Workloads.sf ~n ~avg_degree:10.) ] ))
         [ ("min |P - N^s(u)| (paper)", Scliques_core.Cs_cliques2.Min_uncovered);
           ("first candidate", Scliques_core.Cs_cliques2.First_candidate) ])

let abl_queue () =
  let g = Workloads.sf ~n:Workloads.n_sf ~avg_degree:10. in
  let ks = [ 10; 20; 30 ] in
  let cell queue_mode k =
    Harness.time_first_n ~quota (fun ~should_continue yield ->
        Scliques_core.Poly_delay.iter ~queue_mode ~min_size:k ~should_continue
          (Scliques_core.Neighborhood.create ~s:2 g)
          yield)
  in
  Harness.print_table
    ~title:
      (Printf.sprintf
         "Ablation: PolyDelayEnum queue for large results (SF n=%s, 100 of size>=k)"
         (abbrev Workloads.n_sf))
    ~columns:(List.map (fun k -> Printf.sprintf "k=%d" k) ks)
    ~rows:
      (List.map
         (fun (label, queue_mode) -> (label, List.map (cell queue_mode) ks))
         [ ("FIFO (Fig 4)", Scliques_core.Poly_delay.Fifo);
           ("largest-first (§6)", Scliques_core.Poly_delay.Largest_first) ])

let abl_degeneracy () =
  (* footnote 1: degeneracy-ordered root branching vs the plain ascending
     root, full enumeration (the ordering's value is bounded root P sets;
     its cost is building G^s first) *)
  let n = if Harness.fast then 300 else 1000 in
  let cell root_order g =
    Harness.timed (fun ~should_continue ->
        Scliques_core.Cs_cliques2.iter ~pivot:true ~root_order ~should_continue
          (Scliques_core.Neighborhood.create ~s:2 g)
          (fun _ -> ());
        should_continue ())
  in
  Harness.print_table
    ~title:
      (Printf.sprintf "Ablation: root ordering for CSCliques2P (ALL results, n=%d, s=2)" n)
    ~columns:[ "ER"; "SF" ]
    ~rows:
      (List.map
         (fun (label, root_order) ->
           ( label,
             [ cell root_order (Workloads.er ~n ~avg_degree:10.);
               cell root_order (Workloads.sf ~n ~avg_degree:10.) ] ))
         [ ("ascending ids (Fig 7)", Scliques_core.Cs_cliques2.Ascending);
           ("G^s degeneracy (footnote 1)", Scliques_core.Cs_cliques2.Power_degeneracy) ])

let delays () =
  (* Theorem 4.2 made visible: per-result delay quantiles over the first
     1000 results, via the Scliques_obs recorder. PD's guarantee is a
     polynomial worst-case delay; the BK adaptations have none (but behave
     well in practice). Besides the table, the run leaves a machine-
     readable BENCH_delay.json (full snapshots: delay summary + cache and
     search counters per algorithm) so the perf trajectory across commits
     is diffable. *)
  let quota = 1000 in
  let g = Workloads.er ~n:Workloads.n_9f ~avg_degree:10. in
  let snapshots = ref [] in
  let row alg =
    let obs = Scliques_obs.Obs.create () in
    let outcome =
      Harness.time_first_n ~quota (fun ~should_continue yield ->
          E.iter ~should_continue ~obs alg g ~s:2 yield)
    in
    let s = Scliques_obs.Recorder.summary (Scliques_obs.Obs.delay obs) in
    snapshots := (E.name alg, Scliques_obs.Obs.snapshot_json obs) :: !snapshots;
    ( E.name alg,
      [ outcome;
        Harness.Note (Printf.sprintf "%.4f" s.Scliques_obs.Recorder.first);
        Harness.Note (Printf.sprintf "%.4f" s.Scliques_obs.Recorder.max);
        Harness.Note (Printf.sprintf "%.5f" s.Scliques_obs.Recorder.mean);
        Harness.Note (Printf.sprintf "%.5f" s.Scliques_obs.Recorder.p50);
        Harness.Note (Printf.sprintf "%.5f" s.Scliques_obs.Recorder.p95);
        Harness.Note (Printf.sprintf "%.5f" s.Scliques_obs.Recorder.p99) ] )
  in
  let rows = List.map row [ E.Cs2_p; E.Cs2_pf; E.Cs1; E.Poly_delay ] in
  Harness.print_table
    ~title:
      (Printf.sprintf
         "Delay profile: first 1000 results on ER n=%s deg 10, s=2 (seconds)"
         (abbrev Workloads.n_9f))
    ~columns:[ "total"; "first"; "max gap"; "mean"; "p50"; "p95"; "p99" ]
    ~rows;
  Harness.write_json ~path:"BENCH_delay.json"
    (Scliques_obs.Sink.Obj
       [
         ("experiment", Scliques_obs.Sink.String "delays");
         ( "graph",
           Scliques_obs.Sink.String
             (Printf.sprintf "er n=%d avg_degree=10 seed=%d" Workloads.n_9f Harness.seed)
         );
         ("s", Scliques_obs.Sink.Int 2);
         ("quota", Scliques_obs.Sink.Int quota);
         ("algorithms", Scliques_obs.Sink.Obj (List.rev !snapshots));
       ])

let abl_generic () =
  (* abstraction penalty: the generic connected-hereditary engine vs the
     specialized PolyDelayEnum on the same s-clique instance *)
  let n = if Harness.fast then 200 else 500 in
  let g = Workloads.er ~n ~avg_degree:8. in
  let row (label, run) =
    let count = ref 0 in
    let outcome =
      Harness.timed (fun ~should_continue ->
          run ~should_continue (fun _ -> incr count);
          should_continue ())
    in
    (label, [ outcome; Harness.Note (string_of_int !count) ])
  in
  Harness.print_table
    ~title:
      (Printf.sprintf
         "Ablation: generic hereditary engine vs specialized PD (ALL results, ER n=%d, \
          s=2)"
         n)
    ~columns:[ "time"; "results" ]
    ~rows:
      [
        row
          ( "PolyDelayEnum (specialized)",
            fun ~should_continue yield ->
              Scliques_core.Poly_delay.iter ~should_continue
                (Scliques_core.Neighborhood.create ~s:2 g)
                yield );
        row
          ( "Hereditary engine (generic)",
            fun ~should_continue yield ->
              Scliques_core.Hereditary.iter ~should_continue g
                (Scliques_core.Hereditary.s_clique ~s:2)
                yield );
        row
          ( "CSCliques2P (for scale)",
            fun ~should_continue yield ->
              Scliques_core.Cs_cliques2.iter ~pivot:true ~should_continue
                (Scliques_core.Neighborhood.create ~s:2 g)
                yield );
      ]

let parallel_balance () =
  (* the paper's §8 future work: distribute the enumeration. The task
     decomposition is exact; the open question is balance, so we report
     per-worker load for ER (uniform) vs SF (hub-skewed), with the
     work-stealing columns showing how much the scheduler had to move.
     One-core container: wall-clock speedup is not the point here. *)
  let n = if Harness.fast then 300 else 1000 in
  let row (label, g) =
    let results, stats =
      Scliques_core.Parallel.enumerate_with_stats ~workers:4 g ~s:2
    in
    let loads = stats.Scliques_core.Parallel.tasks_per_worker in
    let max_load = Array.fold_left Int.max 0 loads in
    let avg_load =
      float_of_int (Array.fold_left ( + ) 0 loads) /. float_of_int (Array.length loads)
    in
    ( label,
      [ Harness.Note (string_of_int (List.length results));
        Harness.Note
          (String.concat "/" (Array.to_list (Array.map string_of_int loads)));
        Harness.Note
          (Printf.sprintf "%.2f" (float_of_int max_load /. Float.max 1. avg_load));
        Harness.Note (string_of_int stats.Scliques_core.Parallel.steals);
        Harness.Note (string_of_int stats.Scliques_core.Parallel.splits) ] )
  in
  Harness.print_table
    ~title:
      (Printf.sprintf
         "Future work (§8): 4-worker work-stealing decomposition, n=%d, s=2 — balance" n)
    ~columns:[ "results"; "tasks/worker"; "task skew"; "steals"; "splits" ]
    ~rows:
      [ row ("ER", Workloads.er ~n ~avg_degree:10.);
        row ("SF", Workloads.sf ~n ~avg_degree:10.) ]

let scaling () =
  (* the tentpole measurement: workers × graph family, full enumeration,
     against the sequential CsCliques2P baseline. Each cell also records
     scheduler health (task skew, steals, splits), and every (family,
     workers) measurement appends one JSON line to BENCH_parallel.json so
     successive commits leave a comparable trail.

     Caveat recorded in the JSON too: on a container with a single
     hardware core (cores=1 below), OCaml domains time-share it and
     wall-clock speedup > 1 is physically impossible — there the
     interesting signal is that the speedup stays near 1 (scheduling
     overhead is small) while steals/splits show the balancer working. *)
  (* SF full enumeration blows up fast with n (n=300 already yields ~400K
     results), so the FAST/smoke tier runs much smaller instances to keep
     the whole sweep within a CI minute *)
  let n = if Harness.fast then 120 else 1000 in
  let worker_counts = if Harness.fast then [ 1; 2; 4 ] else [ 1; 2; 4; 8 ] in
  let cores = Domain.recommended_domain_count () in
  let families =
    [ ("ER", Workloads.er ~n ~avg_degree:10.); ("SF", Workloads.sf ~n ~avg_degree:10.) ]
  in
  let rows =
    List.concat_map
      (fun (family, g) ->
        (* sequential baseline: the same engine the workers run, no scheduler *)
        let t0 = Harness.now () in
        let baseline = ref 0 in
        Scliques_core.Cs_cliques2.iter ~pivot:true
          (Scliques_core.Neighborhood.create ~s:2 g)
          (fun _ -> incr baseline);
        let t_seq = Harness.now () -. t0 in
        (* over-splitting check: the minimum-subtree threshold must cut
           the split count without changing the canonical output *)
        let workers = List.fold_left Int.max 1 worker_counts in
        let res_def, st_def =
          Scliques_core.Parallel.enumerate_with_stats ~workers g ~s:2
        in
        let res_all, st_all =
          Scliques_core.Parallel.enumerate_with_stats ~workers
            ~split_min_subtree:0 g ~s:2
        in
        if not (List.equal NS.equal res_def res_all) then
          failwith
            (family ^ ": split threshold changed the canonical output");
        if st_def.Scliques_core.Parallel.splits > st_all.Scliques_core.Parallel.splits
        then
          Printf.printf
            "[warn] %s: threshold did not reduce splits (%d > %d)\n%!" family
            st_def.Scliques_core.Parallel.splits
            st_all.Scliques_core.Parallel.splits;
        Harness.append_json ~path:"BENCH_parallel.json"
          (Scliques_obs.Sink.Obj
             [
               ("experiment", Scliques_obs.Sink.String "split-threshold");
               ("family", Scliques_obs.Sink.String family);
               ("n", Scliques_obs.Sink.Int n);
               ("s", Scliques_obs.Sink.Int 2);
               ("seed", Scliques_obs.Sink.Int Harness.seed);
               ("workers", Scliques_obs.Sink.Int workers);
               ("results", Scliques_obs.Sink.Int (List.length res_def));
               ( "splits_default",
                 Scliques_obs.Sink.Int st_def.Scliques_core.Parallel.splits );
               ( "splits_unthresholded",
                 Scliques_obs.Sink.Int st_all.Scliques_core.Parallel.splits );
               ( "split_ratio",
                 Scliques_obs.Sink.Float
                   (float_of_int st_def.Scliques_core.Parallel.splits
                   /. Float.max 1.
                        (float_of_int st_all.Scliques_core.Parallel.splits)) );
             ]);
        List.map
          (fun workers ->
            let t0 = Harness.now () in
            let results, stats =
              Scliques_core.Parallel.enumerate_with_stats ~workers g ~s:2
            in
            let wall = Harness.now () -. t0 in
            let speedup = t_seq /. Float.max 1e-9 wall in
            let tasks = stats.Scliques_core.Parallel.tasks_per_worker in
            let max_tasks = Array.fold_left Int.max 0 tasks in
            let avg_tasks =
              float_of_int (Array.fold_left ( + ) 0 tasks)
              /. float_of_int (Array.length tasks)
            in
            let skew = float_of_int max_tasks /. Float.max 1. avg_tasks in
            Harness.append_json ~path:"BENCH_parallel.json"
              (Scliques_obs.Sink.Obj
                 [
                   ("experiment", Scliques_obs.Sink.String "scaling");
                   ("family", Scliques_obs.Sink.String family);
                   ("n", Scliques_obs.Sink.Int n);
                   ("s", Scliques_obs.Sink.Int 2);
                   ("seed", Scliques_obs.Sink.Int Harness.seed);
                   ("cores", Scliques_obs.Sink.Int cores);
                   ("workers", Scliques_obs.Sink.Int workers);
                   ("results", Scliques_obs.Sink.Int (List.length results));
                   ("seq_seconds", Scliques_obs.Sink.Float t_seq);
                   ("wall_seconds", Scliques_obs.Sink.Float wall);
                   ("speedup", Scliques_obs.Sink.Float speedup);
                   ("task_skew", Scliques_obs.Sink.Float skew);
                   ("steals", Scliques_obs.Sink.Int stats.Scliques_core.Parallel.steals);
                   ("splits", Scliques_obs.Sink.Int stats.Scliques_core.Parallel.splits);
                 ]);
            ( Printf.sprintf "%s w=%d" family workers,
              [
                Harness.Seconds wall;
                Harness.Note (Printf.sprintf "%.2fx" speedup);
                Harness.Note (Printf.sprintf "%.2f" skew);
                Harness.Note (string_of_int stats.Scliques_core.Parallel.steals);
                Harness.Note (string_of_int stats.Scliques_core.Parallel.splits);
              ] ))
          worker_counts)
      families
  in
  Harness.print_table
    ~title:
      (Printf.sprintf
         "Scaling: work-stealing enumeration, ALL results, n=%d, s=2 (%d cores; \
          sequential CS2P is the speedup baseline)"
         n cores)
    ~columns:[ "wall"; "speedup"; "task skew"; "steals"; "splits" ]
    ~rows

let graph_load () =
  (* The CSR/snapshot tentpole, measured: loading the largest ER instance
     from a binary snapshot vs parsing its edge-list text (target: >= 5x),
     and a BFS sweep over the CSR-backed graph vs the same BFS on a plain
     array-of-arrays adjacency (the pre-CSR storage; target: no slower).
     Numbers land in BENCH_load.json for the cross-commit trail. *)
  let n = Workloads.n_load in
  let g = Workloads.er ~n ~avg_degree:10. in
  let reps = if Harness.fast then 3 else 5 in
  let best_of f =
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Harness.now () in
      ignore (Sys.opaque_identity (f ()));
      best := Float.min !best (Harness.now () -. t0)
    done;
    !best
  in
  let text_path = Filename.temp_file "scliques-bench" ".edges" in
  let snap_path = Filename.temp_file "scliques-bench" ".sgr" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove text_path;
      Sys.remove snap_path)
    (fun () ->
      Sgraph.Edge_list_io.save g text_path;
      Sgraph.Snapshot.save g snap_path;
      (* both paths must reproduce the graph before their times count *)
      assert (G.equal g (Sgraph.Edge_list_io.load text_path));
      assert (G.equal g (Sgraph.Snapshot.load snap_path));
      let t_text = best_of (fun () -> Sgraph.Edge_list_io.load text_path) in
      let t_snap = best_of (fun () -> Sgraph.Snapshot.load snap_path) in
      let speedup = t_text /. Float.max 1e-9 t_snap in
      (* BFS sweep: full distances from spread-out sources; the boxed
         baseline runs the identical algorithm over int array array *)
      let sources =
        let k = Int.min 48 (G.n g) in
        List.init k (fun i -> i * G.n g / k)
      in
      let sweep_csr () =
        List.fold_left
          (fun acc src -> acc + Array.fold_left ( + ) 0 (Sgraph.Bfs.distances g src))
          0 sources
      in
      let rows = Sgraph.Csr.to_rows (G.csr g) in
      let distances_boxed (adj : int array array) src =
        let n = Array.length adj in
        let dist = Array.make n (-1) in
        let queue = Scoll.Fifo_queue.create () in
        dist.(src) <- 0;
        Scoll.Fifo_queue.push queue src;
        while not (Scoll.Fifo_queue.is_empty queue) do
          let v = Scoll.Fifo_queue.pop queue in
          Array.iter
            (fun u ->
              if dist.(u) < 0 then begin
                dist.(u) <- dist.(v) + 1;
                Scoll.Fifo_queue.push queue u
              end)
            adj.(v)
        done;
        dist
      in
      let sweep_boxed () =
        List.fold_left
          (fun acc src -> acc + Array.fold_left ( + ) 0 (distances_boxed rows src))
          0 sources
      in
      assert (sweep_csr () = sweep_boxed ());
      let t_csr = best_of sweep_csr in
      let t_boxed = best_of sweep_boxed in
      let bfs_ratio = t_csr /. Float.max 1e-9 t_boxed in
      Harness.print_table
        ~title:
          (Printf.sprintf
             "Graph load: ER n=%s deg 10 (m=%d), best of %d; BFS sweep from %d \
              sources"
             (abbrev n) (G.m g) reps (List.length sources))
        ~columns:[ "seconds"; "vs text"; "vs boxed" ]
        ~rows:
          [
            ("text parse", [ Harness.Seconds t_text; Harness.Note "1.00x"; Harness.Note "-" ]);
            ( "snapshot load",
              [ Harness.Seconds t_snap;
                Harness.Note (Printf.sprintf "%.2fx" speedup);
                Harness.Note "-" ] );
            ("bfs boxed rows", [ Harness.Seconds t_boxed; Harness.Note "-"; Harness.Note "1.00x" ]);
            ( "bfs csr",
              [ Harness.Seconds t_csr;
                Harness.Note "-";
                Harness.Note (Printf.sprintf "%.2fx" bfs_ratio) ] );
          ];
      if speedup < 5. then
        Printf.printf "[warn] snapshot load only %.2fx faster than text parse\n%!" speedup;
      if bfs_ratio > 1.10 then
        Printf.printf "[warn] CSR BFS sweep %.2fx the boxed-rows baseline\n%!" bfs_ratio;
      Harness.write_json ~path:"BENCH_load.json"
        (Scliques_obs.Sink.Obj
           [
             ("experiment", Scliques_obs.Sink.String "load");
             ( "graph",
               Scliques_obs.Sink.String
                 (Printf.sprintf "er n=%d avg_degree=10 seed=%d" n Harness.seed) );
             ("edges", Scliques_obs.Sink.Int (G.m g));
             ("reps", Scliques_obs.Sink.Int reps);
             ("text_parse_seconds", Scliques_obs.Sink.Float t_text);
             ("snapshot_load_seconds", Scliques_obs.Sink.Float t_snap);
             ("snapshot_speedup", Scliques_obs.Sink.Float speedup);
             ("bfs_sources", Scliques_obs.Sink.Int (List.length sources));
             ("bfs_boxed_seconds", Scliques_obs.Sink.Float t_boxed);
             ("bfs_csr_seconds", Scliques_obs.Sink.Float t_csr);
             ("bfs_csr_over_boxed", Scliques_obs.Sink.Float bfs_ratio);
           ]))

let churn () =
  (* The refresh tentpole, measured: after a single-edge edit of the
     suite's largest ER instance, patching the prior answer with
     Enumerate.refresh vs recomputing it from scratch — and the
     fingerprint gate vs the pre-fingerprint baseline
     ([~fingerprints:false], every affected root re-runs). The prior
     answer is also streamed to disk and indexed (SCLQIDX1), and the
     refreshed roots are spliced back by byte extent, so the file-level
     patch cost is measured too. Every refreshed answer is asserted
     equal to the recomputation before its time counts. Numbers land in
     BENCH_churn.json. *)
  let module RI = Scliques_core.Result_io.Index in
  let module RSt = Scliques_core.Result_io.Stream in
  let n = Workloads.n_load in
  let s = 2 in
  let g0 = Workloads.er ~n ~avg_degree:10. in
  let time f =
    let t0 = Harness.now () in
    let r = f () in
    (r, Harness.now () -. t0)
  in
  let prior, t_prior = time (fun () -> E.sorted_results E.Cs2_pf g0 ~s) in
  (* persistent sidecar: stream the prior answer once and index it *)
  let stream_path = Filename.temp_file "bench_churn" ".results" in
  let out_path = stream_path ^ ".spliced" in
  let idx, t_index =
    time (fun () ->
        let w = RSt.open_writer stream_path in
        List.iter (RSt.write_set w) prior;
        RSt.close w;
        let idx =
          RI.build ~s ~n
            ~fingerprint:(Scliques_core.Neighborhood.root_fingerprint ~s g0)
            stream_path
        in
        RI.save idx (RI.path_for stream_path);
        idx)
  in
  (* one deleted edge and one inserted non-edge, both incident to the
     first node that has a neighbor at all *)
  let u = ref 0 in
  while G.degree g0 !u = 0 do incr u done;
  let u = !u in
  let del_v = (G.neighbors g0 u).(0) in
  let ins_v =
    let v = ref 0 in
    while !v = u || G.mem_edge g0 u !v do incr v done;
    !v
  in
  let scenarios =
    [
      ("delete", Sgraph.Overlay.Delete (u, del_v));
      ("insert", Sgraph.Overlay.Insert (u, ins_v));
    ]
  in
  let measured =
    List.map
      (fun (op, edit) ->
        let edits = [ edit ] in
        let g1 = Sgraph.Diff.apply g0 edits in
        let touched = Sgraph.Overlay.touched edits in
        let full, t_full = time (fun () -> E.sorted_results E.Cs2_pf g1 ~s) in
        (* pre-fingerprint baseline: the whole affected set re-runs *)
        let base, t_base =
          time (fun () ->
              E.refresh ~engine:(`Seq E.Cs2_pf) ~fingerprints:false ~before:g0
                ~after:g1 ~touched ~s ~prior ())
        in
        (* the gate, fed from the stored SCLQIDX1 fingerprints *)
        let delta, t_inc =
          time (fun () ->
              E.refresh ~engine:(`Seq E.Cs2_pf)
                ~prior_fingerprint:(fun r ->
                  Some idx.RI.entries.(r).RI.fingerprint)
                ~before:g0 ~after:g1 ~touched ~s ~prior ())
        in
        if not (List.equal NS.equal base.E.results full) then
          failwith (op ^ ": ungated refresh diverged from full recompute");
        if not (List.equal NS.equal delta.E.results full) then
          failwith (op ^ ": fingerprinted refresh diverged from full recompute");
        (* the re-run set must sit strictly inside the radius-(2s-1)
           cover around the endpoints (the coarse bound refresh starts
           from) — fingerprints are what shrink it *)
        let a, b = Sgraph.Overlay.edit_endpoints edit in
        let cover =
          NS.cardinal
            (NS.union
               (NS.union
                  (Sgraph.Bfs.ball g0 a ~radius:((2 * s) - 1))
                  (Sgraph.Bfs.ball g0 b ~radius:((2 * s) - 1)))
               (NS.union
                  (Sgraph.Bfs.ball g1 a ~radius:((2 * s) - 1))
                  (Sgraph.Bfs.ball g1 b ~radius:((2 * s) - 1))))
        in
        if delta.E.roots_rerun >= cover then
          Printf.printf
            "[warn] %s: %d roots re-run, not below the radius-(2s-1) cover \
             of %d\n%!"
            op delta.E.roots_rerun cover;
        let affected = delta.E.roots_rerun + delta.E.roots_skipped in
        let skip_rate =
          float_of_int delta.E.roots_skipped /. Float.max 1. (float_of_int affected)
        in
        if skip_rate < 0.5 then
          Printf.printf
            "[warn] %s: fingerprint skip rate %.0f%% below 50%% (%d of %d \
             affected roots re-ran)\n%!"
            op (100. *. skip_rate) delta.E.roots_rerun affected;
        (* file-level patch: splice the re-run roots into the stream *)
        let rerun = Hashtbl.create 64 in
        List.iter
          (fun (root, fp) ->
            if idx.RI.entries.(root).RI.fingerprint <> fp then
              Hashtbl.replace rerun root (fp, ref []))
          delta.E.root_fingerprints;
        List.iter
          (fun c ->
            match Hashtbl.find_opt rerun (NS.min_elt c) with
            | Some (_, acc) -> acc := c :: !acc
            | None -> ())
          delta.E.results;
        let patched =
          Hashtbl.fold
            (fun root (fp, acc) l -> (root, fp, List.rev !acc) :: l)
            rerun []
        in
        let (_, sstats), t_splice =
          time (fun () ->
              RI.splice ~old_stream:stream_path ~index:idx ~patched
                ~out:out_path)
        in
        let speedup = t_full /. Float.max 1e-9 t_inc in
        if speedup < 1. then
          Printf.printf
            "[warn] %s: incremental refresh %.3fs not faster than full \
             recompute %.3fs\n%!"
            op t_inc t_full;
        (op, edit, t_full, t_base, t_inc, speedup, delta, cover, skip_rate,
         t_splice, sstats))
      scenarios
  in
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ stream_path; RI.path_for stream_path; out_path; RI.path_for out_path ];
  Harness.print_table
    ~title:
      (Printf.sprintf
         "Churn: ER n=%s deg 10 (m=%d), s=%d, single-edge edit; prior answer \
          %d results in %.3fs, indexed in %.3fs"
         (abbrev n) (G.m g0) s (List.length prior) t_prior t_index)
    ~columns:
      [ "full"; "no-fp refresh"; "fp refresh"; "speedup"; "rerun/skip"; "splice" ]
    ~rows:
      (List.map
         (fun (op, _, t_full, t_base, t_inc, speedup, delta, _, _, t_splice,
               sstats) ->
           ( op,
             [
               Harness.Seconds t_full;
               Harness.Seconds t_base;
               Harness.Seconds t_inc;
               Harness.Note (Printf.sprintf "%.1fx" speedup);
               Harness.Note
                 (Printf.sprintf "%d/%d" delta.E.roots_rerun
                    delta.E.roots_skipped);
               Harness.Note
                 (Printf.sprintf "%.3fs %dB+%dB" t_splice
                    sstats.RI.fresh_bytes sstats.RI.copied_bytes);
             ] ))
         measured);
  Harness.write_json ~path:"BENCH_churn.json"
    (Scliques_obs.Sink.Obj
       [
         ("experiment", Scliques_obs.Sink.String "churn");
         ( "graph",
           Scliques_obs.Sink.String
             (Printf.sprintf "er n=%d avg_degree=10 seed=%d" n Harness.seed) );
         ("edges", Scliques_obs.Sink.Int (G.m g0));
         ("s", Scliques_obs.Sink.Int s);
         ("prior_results", Scliques_obs.Sink.Int (List.length prior));
         ("prior_seconds", Scliques_obs.Sink.Float t_prior);
         ("index_seconds", Scliques_obs.Sink.Float t_index);
         ( "scenarios",
           Scliques_obs.Sink.Obj
             (List.map
                (fun (op, edit, t_full, t_base, t_inc, speedup, delta, cover,
                      skip_rate, t_splice, sstats) ->
                  let a, b = Sgraph.Overlay.edit_endpoints edit in
                  ( op,
                    Scliques_obs.Sink.Obj
                      [
                        ("edge", Scliques_obs.Sink.String (Printf.sprintf "%d-%d" a b));
                        ("full_seconds", Scliques_obs.Sink.Float t_full);
                        ("baseline_seconds", Scliques_obs.Sink.Float t_base);
                        ("incremental_seconds", Scliques_obs.Sink.Float t_inc);
                        ("speedup", Scliques_obs.Sink.Float speedup);
                        ( "speedup_vs_baseline",
                          Scliques_obs.Sink.Float
                            (t_base /. Float.max 1e-9 t_inc) );
                        ("roots_rerun", Scliques_obs.Sink.Int delta.E.roots_rerun);
                        ( "roots_skipped",
                          Scliques_obs.Sink.Int delta.E.roots_skipped );
                        ("skip_rate", Scliques_obs.Sink.Float skip_rate);
                        ("cover_2s1", Scliques_obs.Sink.Int cover);
                        ("splice_seconds", Scliques_obs.Sink.Float t_splice);
                        ( "splice_fresh_bytes",
                          Scliques_obs.Sink.Int sstats.RI.fresh_bytes );
                        ( "splice_copied_bytes",
                          Scliques_obs.Sink.Int sstats.RI.copied_bytes );
                        ( "results",
                          Scliques_obs.Sink.Int (List.length delta.E.results) );
                        ("added", Scliques_obs.Sink.Int (List.length delta.E.added));
                        ( "removed",
                          Scliques_obs.Sink.Int (List.length delta.E.removed) );
                      ] ))
                measured) );
       ])

(* ---------- daemon serving throughput ---------- *)

let serve () =
  (* An in-process daemon on a Unix socket, hammered by 1/4/8 client
     threads. Each client runs [queries] complete CS2-PF queries over
     its own connection; a query only counts when its [Done] says
     Complete and it streamed exactly the in-process result count, so
     the throughput number is for verified-correct serving. Numbers
     land in BENCH_daemon.json. *)
  let module Server = Scliques_daemon.Server in
  let module Client = Scliques_daemon.Client in
  let module P = Scliques_daemon.Protocol in
  let gadget_n = if Harness.fast then 5 else 9 in
  let g = Sgraph.Gen.exponential_gadget gadget_n in
  let s = 2 in
  let expected = List.length (E.sorted_results E.Cs2_pf g ~s) in
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "scliques-bench-%d.sock" (Unix.getpid ()))
  in
  (* more domains than cores is a slowdown, not concurrency *)
  let workers = min 8 (max 2 (Domain.recommended_domain_count ())) in
  let srv =
    Server.create ~workers ~max_queue:64 ~graphs:[ ("bench", g) ]
      (Server.Unix_socket sock)
  in
  let queries = if Harness.fast then 4 else 25 in
  let run_level clients =
    let bad = Atomic.make 0 in
    let t0 = Harness.now () in
    let threads =
      List.init clients (fun _ ->
          Thread.create
            (fun () ->
              let c = Client.connect (Server.Unix_socket sock) in
              Fun.protect
                ~finally:(fun () -> Client.close c)
                (fun () ->
                  for i = 1 to queries do
                    let q =
                      {
                        P.q_id = i;
                        q_engine = P.Alg E.Cs2_pf;
                        q_graph = "bench";
                        q_s = s;
                        q_min_size = 0;
                        q_deadline_s = None;
                        q_max_results = None;
                        q_resume = None;
                      }
                    in
                    let n = ref 0 in
                    match Client.run_query ~on_result:(fun _ -> incr n) c q with
                    | Client.Finished
                        { P.d_outcome = Scliques_core.Budget.Complete; _ }
                      when !n = expected ->
                        ()
                    | _ -> Atomic.incr bad
                  done))
            ())
    in
    List.iter Thread.join threads;
    let dt = Harness.now () -. t0 in
    if Atomic.get bad > 0 then
      failwith (Printf.sprintf "serve: %d failed queries" (Atomic.get bad));
    (float_of_int (clients * queries) /. dt, dt)
  in
  let measured = List.map (fun c -> (c, run_level c)) [ 1; 4; 8 ] in
  Server.stop srv;
  Harness.print_table
    ~title:
      (Printf.sprintf
         "daemon throughput (gadget n=%d, %d results/query, s=%d, %d workers)"
         gadget_n expected s workers)
    ~columns:[ "queries/s"; "wall s" ]
    ~rows:
      (List.map
         (fun (clients, (qps, dt)) ->
           ( Printf.sprintf "%d client%s" clients (if clients = 1 then "" else "s"),
             [ Harness.Note (Printf.sprintf "%.1f" qps); Harness.Seconds dt ] ))
         measured);
  Harness.write_json ~path:"BENCH_daemon.json"
    (Scliques_obs.Sink.Obj
       [
         ("experiment", Scliques_obs.Sink.String "serve");
         ( "graph",
           Scliques_obs.Sink.String (Printf.sprintf "gadget n=%d" gadget_n) );
         ("s", Scliques_obs.Sink.Int s);
         ("results_per_query", Scliques_obs.Sink.Int expected);
         ("workers", Scliques_obs.Sink.Int workers);
         ("queries_per_client", Scliques_obs.Sink.Int queries);
         ( "levels",
           Scliques_obs.Sink.Obj
             (List.map
                (fun (clients, (qps, dt)) ->
                  ( string_of_int clients,
                    Scliques_obs.Sink.Obj
                      [
                        ("queries_per_sec", Scliques_obs.Sink.Float qps);
                        ("wall_seconds", Scliques_obs.Sink.Float dt);
                      ] ))
                measured) );
       ])

(* ---------- serving under churn ---------- *)

let serve_churn () =
  (* The live-mutation path, measured end to end: 4 client threads
     stream verified-complete queries while a mutator thread flips the
     same edit-script pair over the wire against a durable state dir —
     so every ack pays the journal fsync, and the compaction threshold
     is low enough that rebases happen mid-run. Epoch pinning makes
     correctness checkable under churn: every completed stream must
     equal one of the two reference answers, bit for bit. Numbers land
     in BENCH_daemon_churn.json. *)
  let module Server = Scliques_daemon.Server in
  let module Client = Scliques_daemon.Client in
  let module P = Scliques_daemon.Protocol in
  let module Stream = Scliques_core.Result_io.Stream in
  let gadget_n = if Harness.fast then 5 else 9 in
  let g0 = Sgraph.Gen.exponential_gadget gadget_n in
  let s = 2 in
  (* flip one existing edge and one chord, keeping n and m fixed so the
     forward and backward scripts alternate cleanly *)
  let u = ref 0 in
  while G.degree g0 !u = 0 do incr u done;
  let u = !u in
  let del_v = (G.neighbors g0 u).(0) in
  let ins_v =
    let v = ref 0 in
    while !v = u || G.mem_edge g0 u !v do incr v done;
    !v
  in
  let g1 =
    Sgraph.Diff.apply g0
      [ Sgraph.Overlay.Delete (u, del_v); Sgraph.Overlay.Insert (u, ins_v) ]
  in
  let script_between a b =
    Sgraph.Diff.to_string ~base_n:(G.n a) ~base_m:(G.m a) (Sgraph.Diff.between a b)
  in
  let fwd = script_between g0 g1 in
  let bwd = script_between g1 g0 in
  let sorted_stream g =
    List.sort String.compare
      (List.map Stream.encode_set (E.sorted_results E.Cs2_pf g ~s))
  in
  let ref0 = sorted_stream g0 in
  let ref1 = sorted_stream g1 in
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "scliques-bench-churn-%d.sock" (Unix.getpid ()))
  in
  let state_dir = Filename.temp_file "scliques-bench-state" "" in
  Sys.remove state_dir;
  Unix.mkdir state_dir 0o755;
  let workers = min 8 (max 2 (Domain.recommended_domain_count ())) in
  let srv =
    Server.create ~workers ~max_queue:64 ~compact_threshold:32 ~state_dir
      ~graphs:[ ("bench", g0) ]
      (Server.Unix_socket sock)
  in
  let queries = if Harness.fast then 4 else 25 in
  let clients = 4 in
  let bad = Atomic.make 0 in
  let stop = Atomic.make false in
  let latencies = ref [] in
  let mutator =
    Thread.create
      (fun () ->
        let c = Client.connect (Server.Unix_socket sock) in
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            let i = ref 0 in
            let mutate_once script =
              let t0 = Harness.now () in
              match Client.mutate c ~id:(!i + 1) ~graph:"bench" ~script with
              | Client.Applied _ -> latencies := (Harness.now () -. t0) :: !latencies
              | _ -> Atomic.incr bad
            in
            while not (Atomic.get stop) do
              mutate_once (if !i land 1 = 0 then fwd else bwd);
              incr i;
              Thread.yield ()
            done;
            (* leave the graph back at g0 *)
            if !i land 1 = 1 then begin
              mutate_once bwd;
              incr i
            end))
      ()
  in
  let t0 = Harness.now () in
  let threads =
    List.init clients (fun _ ->
        Thread.create
          (fun () ->
            let c = Client.connect (Server.Unix_socket sock) in
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () ->
                for i = 1 to queries do
                  let q =
                    {
                      P.q_id = i;
                      q_engine = P.Alg E.Cs2_pf;
                      q_graph = "bench";
                      q_s = s;
                      q_min_size = 0;
                      q_deadline_s = None;
                      q_max_results = None;
                      q_resume = None;
                    }
                  in
                  let acc = ref [] in
                  match
                    Client.run_query ~on_result:(fun r -> acc := r :: !acc) c q
                  with
                  | Client.Finished
                      { P.d_outcome = Scliques_core.Budget.Complete; _ } ->
                      let got = List.sort String.compare !acc in
                      if
                        not
                          (List.equal String.equal got ref0
                          || List.equal String.equal got ref1)
                      then Atomic.incr bad
                  | _ -> Atomic.incr bad
                done))
          ())
  in
  List.iter Thread.join threads;
  let dt = Harness.now () -. t0 in
  Atomic.set stop true;
  Thread.join mutator;
  let epoch = Server.graph_epoch srv ~graph:"bench" in
  Server.stop srv;
  Array.iter
    (fun e -> Sys.remove (Filename.concat state_dir e))
    (Sys.readdir state_dir);
  Unix.rmdir state_dir;
  if Atomic.get bad > 0 then
    failwith
      (Printf.sprintf "serve-churn: %d failed or wrong-epoch operations"
         (Atomic.get bad));
  let lats = List.sort Float.compare !latencies in
  let mutations = List.length lats in
  let mean = List.fold_left ( +. ) 0. lats /. float_of_int (max 1 mutations) in
  let pick q =
    if mutations = 0 then 0.
    else List.nth lats (min (mutations - 1) (mutations * q / 100))
  in
  let qps = float_of_int (clients * queries) /. dt in
  Harness.print_table
    ~title:
      (Printf.sprintf
         "serving under churn (gadget n=%d, s=%d, %d workers, %d clients, \
          journal fsync on ack)"
         gadget_n s workers clients)
    ~columns:[ "count"; "rate or latency" ]
    ~rows:
      [
        ( "queries",
          [
            Harness.Note (string_of_int (clients * queries));
            Harness.Note (Printf.sprintf "%.1f/s" qps);
          ] );
        ( "mutations",
          [
            Harness.Note (string_of_int mutations);
            Harness.Note (Printf.sprintf "mean %.4fs p95 %.4fs" mean (pick 95));
          ] );
        ( "final epoch",
          [
            Harness.Note
              (match epoch with Some e -> string_of_int e | None -> "?");
            Harness.Note "2 edits per mutation";
          ] );
      ];
  Harness.write_json ~path:"BENCH_daemon_churn.json"
    (Scliques_obs.Sink.Obj
       [
         ("experiment", Scliques_obs.Sink.String "serve-churn");
         ( "graph",
           Scliques_obs.Sink.String (Printf.sprintf "gadget n=%d" gadget_n) );
         ("s", Scliques_obs.Sink.Int s);
         ("workers", Scliques_obs.Sink.Int workers);
         ("clients", Scliques_obs.Sink.Int clients);
         ("queries", Scliques_obs.Sink.Int (clients * queries));
         ("queries_per_sec", Scliques_obs.Sink.Float qps);
         ("wall_seconds", Scliques_obs.Sink.Float dt);
         ("mutations", Scliques_obs.Sink.Int mutations);
         ("mutation_mean_seconds", Scliques_obs.Sink.Float mean);
         ("mutation_p95_seconds", Scliques_obs.Sink.Float (pick 95));
         ( "mutation_max_seconds",
           Scliques_obs.Sink.Float (pick 100) );
         ( "final_epoch",
           Scliques_obs.Sink.Int (Option.value epoch ~default:(-1)) );
       ])

(* ---------- registry ---------- *)

let all : (string * string * (unit -> unit)) list =
  [
    ("datasets", "dataset/proxy summary table (paper §7)", datasets);
    ("fig9a", "BK adaptations on ER graphs", fig9a);
    ("fig9b", "varying nodes, ER", fig9b);
    ("fig9c", "varying nodes, SF", fig9c);
    ("fig9d", "varying density, ER", fig9d);
    ("fig9e", "varying s, ER", fig9e);
    ("fig9f", "delay over all results, ER", fig9f);
    ("fig9g", "varying density, SF", fig9g);
    ("fig9h", "varying s, SF", fig9h);
    ("fig9i", "real-data proxies", fig9i);
    ("fig10a", "large results, ER", fig10a);
    ("fig10b", "large results, SF", fig10b);
    ("fig10c", "large results, proxies", fig10c);
    ("fig11", "avg/max sampled sizes", fig11);
    ("delays", "per-result delay profile (Theorem 4.2)", delays);
    ("abl_cache", "ablation: N^s cache", abl_cache);
    ("abl_index", "ablation: PD index structure", abl_index);
    ("abl_pivot", "ablation: pivot rule", abl_pivot);
    ("abl_queue", "ablation: PD queue discipline", abl_queue);
    ("abl_degeneracy", "ablation: root ordering (footnote 1)", abl_degeneracy);
    ("abl_generic", "ablation: generic CKS engine vs specialized PD", abl_generic);
    ("parallel", "future work: parallel decomposition balance", parallel_balance);
    ("scaling", "work-stealing speedup: workers x graph family", scaling);
    ("load", "graph load: text parse vs binary snapshot + BFS sweep", graph_load);
    ("churn", "incremental refresh vs full recompute after an edge edit", churn);
    ("serve", "daemon throughput: queries/sec at 1/4/8 concurrent clients", serve);
    ( "serve-churn",
      "serving under live wire mutations: throughput + journaled ack latency",
      serve_churn );
  ]
