(* Workload graphs of the paper's evaluation (§7), memoized so that every
   experiment sweeping the same family reuses the same graph.

   The paper uses SNAP-generated Erdős–Rényi ("ER") and scale-free ("SF")
   graphs plus five SNAP datasets. Sizes here are scaled down ~1/10–1/100
   (see DESIGN.md §4); shapes, not absolute times, are the target. *)

module G = Sgraph.Graph

module Stbl = Hashtbl.Make (String)

let cache : G.t Stbl.t = Stbl.create 32

let memo key build =
  match Stbl.find_opt cache key with
  | Some g -> g
  | None ->
      let g = build () in
      Stbl.replace cache key g;
      g

let rng_for key =
  (* one deterministic stream per workload, independent of build order *)
  Scoll.Rng.create (Harness.seed + Hashtbl.hash key)

let er ~n ~avg_degree =
  let key = Printf.sprintf "er-%d-%g" n avg_degree in
  memo key (fun () -> Sgraph.Gen.erdos_renyi (rng_for key) ~n ~avg_degree)

let sf ~n ~avg_degree =
  let key = Printf.sprintf "sf-%d-%g" n avg_degree in
  let m_attach = max 1 (int_of_float (avg_degree /. 2.)) in
  memo key (fun () -> Sgraph.Gen.barabasi_albert (rng_for key) ~n ~m_attach)

(* ---------- real-dataset proxies ---------- *)

type dataset = {
  name : string;
  paper_nodes : int;
  paper_edges : int;
  proxy : unit -> G.t;
}

let proxy_of ~name ~n ~avg_degree ~communities =
  let key = Printf.sprintf "proxy-%s" name in
  memo key (fun () ->
      Sgraph.Gen.social_proxy (rng_for key) ~n ~avg_degree ~communities)

let scale n = if Harness.fast then n / 4 else n

(* Node/edge counts as reported in the paper's §7; average degree of each
   proxy matches the dataset's 2m/n. *)
let datasets () =
  [
    {
      name = "dblp";
      paper_nodes = 317_080;
      paper_edges = 1_049_866;
      proxy =
        (fun () ->
          proxy_of ~name:"dblp" ~n:(scale 12000) ~avg_degree:6.6 ~communities:240);
    };
    {
      name = "amazon";
      paper_nodes = 334_863;
      paper_edges = 925_872;
      proxy =
        (fun () ->
          proxy_of ~name:"amazon" ~n:(scale 12000) ~avg_degree:5.5 ~communities:240);
    };
    {
      name = "LiveJournal";
      paper_nodes = 3_997_962;
      paper_edges = 34_681_189;
      proxy =
        (fun () ->
          proxy_of ~name:"LiveJournal" ~n:(scale 16000) ~avg_degree:17.3
            ~communities:160);
    };
    {
      name = "twitter";
      paper_nodes = 81_306;
      paper_edges = 1_768_149;
      proxy =
        (fun () ->
          proxy_of ~name:"twitter" ~n:(scale 4000) ~avg_degree:43.5 ~communities:40);
    };
    {
      name = "youtube";
      paper_nodes = 1_134_890;
      paper_edges = 2_987_624;
      proxy =
        (fun () ->
          proxy_of ~name:"youtube" ~n:(scale 12000) ~avg_degree:5.3 ~communities:480);
    };
  ]

(* Sweep sizes (scaled from the paper's 1K..10M) *)

let er_sizes_9a = if Harness.fast then [ 300; 1000; 3000 ] else [ 1000; 3000; 10_000 ]

let er_sizes_9b =
  if Harness.fast then [ 300; 1000; 3000 ] else [ 1000; 3000; 10_000; 30_000 ]

let sf_sizes_9c = if Harness.fast then [ 300; 1000 ] else [ 1000; 3000; 10_000 ]

let densities_er = if Harness.fast then [ 4.; 10.; 20. ] else [ 4.; 10.; 20.; 40.; 80. ]

let densities_sf = if Harness.fast then [ 4.; 10. ] else [ 4.; 10.; 20.; 40. ]

let n_9d = if Harness.fast then 1000 else 10_000

let n_9e = if Harness.fast then 1000 else 10_000

(* Fig 9f enumerates ALL results (tens per node on ER deg 10), so the
   graph is kept small enough for the slowest algorithm to show several
   deciles within budget. *)
let n_9f = if Harness.fast then 300 else 800

(* the index ablation needs complete PolyDelayEnum runs *)
let n_index = if Harness.fast then 100 else 200

let n_sf = if Harness.fast then 1000 else 3000

(* the load experiment times graph I/O on the suite's largest ER instance
   (matching the top of er_sizes_9b) *)
let n_load = if Harness.fast then 3000 else 30_000

let ks_er = [ 5; 10; 15; 20 ]

let ks_sf = if Harness.fast then [ 10; 20 ] else [ 20; 30; 40; 50 ]

let k_real = 15
