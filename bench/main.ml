(* Benchmark driver.

   Usage:
     dune exec bench/main.exe                 # every experiment + bechamel
     dune exec bench/main.exe -- fig9a fig11  # selected experiments
     dune exec bench/main.exe -- --list       # available experiment ids
     dune exec bench/main.exe -- --bechamel   # micro-benchmarks only
     dune exec bench/main.exe -- --bechamel kernel:  # name-prefix subset
     dune exec bench/main.exe -- scaling --smoke  # CI smoke: FAST sizes

   Environment: FAST=1 (small workloads), BUDGET=<seconds per cell>,
   SEED=<workload seed>. See bench/harness.ml. The --smoke flag is
   consumed by Harness at startup (it implies FAST=1) and stripped from
   the experiment ids here. *)

let list_experiments () =
  print_endline "available experiments:";
  List.iter
    (fun (id, descr, _) -> Printf.printf "  %-10s %s\n" id descr)
    Experiments.all;
  print_endline "  bechamel   micro-benchmark suite"

let run_experiment (id, descr, f) =
  Harness.section (Printf.sprintf "%s — %s" id descr);
  let t0 = Unix.gettimeofday () in
  f ();
  Printf.printf "[%s done in %.1fs]\n%!" id (Unix.gettimeofday () -. t0)

let () =
  let args =
    List.filter (fun a -> not (String.equal a "--smoke")) (List.tl (Array.to_list Sys.argv))
  in
  Printf.printf "s-clique benchmark suite (FAST=%b, per-cell budget %gs, seed %d)\n%!"
    Harness.fast Harness.budget Harness.seed;
  match args with
  | [ "--list" ] -> list_experiments ()
  | [ "--bechamel" ] -> Bechamel_suite.run ()
  | [ "--bechamel"; prefix ] -> Bechamel_suite.run ~filter:prefix ()
  | [] ->
      List.iter run_experiment Experiments.all;
      Bechamel_suite.run ()
  | ids ->
      List.iter
        (fun id ->
          if String.equal id "bechamel" then Bechamel_suite.run ()
          else
            match List.find_opt (fun (i, _, _) -> String.equal i id) Experiments.all with
            | Some exp -> run_experiment exp
            | None ->
                Printf.eprintf "unknown experiment %S (try --list)\n" id;
                exit 1)
        ids
